"""Canned equivocation mutators, addressable by name.

An :class:`~repro.adversary.adversary.EquivocatingBehavior` runs the
honest protocol but passes every outgoing payload through a *mutator*
``(round, recipient, payload) -> payload | None`` so the byzantine
party can tell different stories to different recipients — the exact
attack shape of the paper's Lemmas (split views, twisted suggestions).

Tests and attack constructions often build bespoke closures, but the
declarative layers (the CLI, :class:`~repro.experiment.ScenarioSpec`)
need mutators that are *serializable*: this module keeps a registry of
named constructors so ``"reverse_even"`` means the same executable lie
in a JSON spec, a CLI flag, and a process-pool worker.

Every canned mutator is deterministic and parameter-free (parameters
are baked in by the constructor), so runs stay reproducible.

Mutators *compose*: ``resolve_mutator("reverse_even+drop_odd")`` builds
the sequential application of the named primitives (a dropped payload
stays dropped), so the conformance harness's adversary search
(:mod:`repro.conform.search`) can explore the strategy space while
every explored strategy remains a serializable name.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AdversaryError
from repro.ids import PartyId

__all__ = [
    "Mutator",
    "MUTATORS",
    "resolve_mutator",
    "compose_mutators",
    "reverse_even_mutator",
    "reverse_all_mutator",
    "drop_even_mutator",
    "drop_odd_mutator",
    "swap_adjacent_mutator",
    "lie_to_first_mutator",
    "steer_l_optimal_mutator",
    "steer_r_optimal_mutator",
]

#: ``(round, recipient, payload) -> payload`` — ``None`` drops the message.
Mutator = Callable[[int, PartyId, object], object]


def _reverse_party_tuples(payload: object) -> object:
    """Reverse every tuple-of-PartyId found inside ``payload``.

    This is the cheapest structural lie: a reversed preference list is
    still *valid*, so it survives input validation and must be caught by
    the broadcast layer's consistency, not by format checks.
    """
    if isinstance(payload, tuple):
        if payload and all(isinstance(x, PartyId) for x in payload):
            return tuple(reversed(payload))
        return tuple(_reverse_party_tuples(x) for x in payload)
    return payload


def reverse_even_mutator() -> Mutator:
    """Lie (reversed preference lists) to recipients with even index.

    The canonical split-view equivocation: half the network hears the
    truth, half hears the reverse — the Lemma-style two-world setup.
    """

    def mutate(round_now: int, dst: PartyId, payload: object) -> object:
        if dst.index % 2 == 0:
            return _reverse_party_tuples(payload)
        return payload

    return mutate


def reverse_all_mutator() -> Mutator:
    """Lie (reversed preference lists) to everyone, consistently.

    A consistent lie is *not* equivocation — broadcast happily delivers
    it.  Useful as the control arm next to ``reverse_even``.
    """

    def mutate(round_now: int, dst: PartyId, payload: object) -> object:
        return _reverse_party_tuples(payload)

    return mutate


def drop_even_mutator() -> Mutator:
    """Selective omission: messages to even-index recipients vanish."""

    def mutate(round_now: int, dst: PartyId, payload: object) -> object:
        if dst.index % 2 == 0:
            return None
        return payload

    return mutate


def drop_odd_mutator() -> Mutator:
    """Selective omission, complementary split: odd-index recipients starve."""

    def mutate(round_now: int, dst: PartyId, payload: object) -> object:
        if dst.index % 2 == 1:
            return None
        return payload

    return mutate


def _swap_adjacent(payload: object) -> object:
    """Swap the first two entries of every tuple-of-PartyId in ``payload``.

    The minimal reorder lie: the list stays a valid permutation but its
    top choice changes — a targeted perturbation rather than the full
    reversal.
    """
    if isinstance(payload, tuple):
        if len(payload) >= 2 and all(isinstance(x, PartyId) for x in payload):
            return (payload[1], payload[0]) + payload[2:]
        return tuple(_swap_adjacent(x) for x in payload)
    return payload


def swap_adjacent_mutator() -> Mutator:
    """Reorder lie: swap the top two preference entries, for everyone."""

    def mutate(round_now: int, dst: PartyId, payload: object) -> object:
        return _swap_adjacent(payload)

    return mutate


def lie_to_first_mutator() -> Mutator:
    """Targeted lie: reversed preference lists, but only to index-0 parties.

    The narrowest equivocation — one recipient per side hears a
    different story; everyone else hears the truth.
    """

    def mutate(round_now: int, dst: PartyId, payload: object) -> object:
        if dst.index == 0:
            return _reverse_party_tuples(payload)
        return payload

    return mutate


def _sort_party_tuples(payload: object, reverse: bool) -> object:
    """Sort every tuple-of-PartyId inside ``payload`` (asc or desc).

    An ascending sort is the *default list* — the order Lemma 1
    substitutes for silent parties — so declaring it erases whatever
    resistance the corrupted party's true list encoded; the descending
    sort is its mirror.  Both are valid permutations, so they pass
    format checks and only the lattice position of the outcome reveals
    the steering.
    """
    if isinstance(payload, tuple):
        if payload and all(isinstance(x, PartyId) for x in payload):
            return tuple(sorted(payload, reverse=reverse))
        return tuple(_sort_party_tuples(x, reverse) for x in payload)
    return payload


def steer_l_optimal_mutator() -> Mutator:
    """Steering lie: declare the default (ascending) list to everyone.

    Tries to drag the honest outcome toward the L-optimal end of the
    lattice by flattening the corrupted parties' declared preferences
    into the canonical order.  Whether it *succeeds* is exactly what the
    ``lattice_position`` record tag lets ensembles measure.
    """

    def mutate(round_now: int, dst: PartyId, payload: object) -> object:
        return _sort_party_tuples(payload, reverse=False)

    return mutate


def steer_r_optimal_mutator() -> Mutator:
    """Steering lie, mirrored: declare the descending list to everyone.

    The complementary arm of ``steer_l_optimal`` — together (and
    composed with the split-view primitives via ``+``) they probe
    whether an adversary can move the protocol along the lattice axis.
    """

    def mutate(round_now: int, dst: PartyId, payload: object) -> object:
        return _sort_party_tuples(payload, reverse=True)

    return mutate


#: Registry of named mutator constructors (call to get a fresh mutator).
MUTATORS: dict[str, Callable[[], Mutator]] = {
    "reverse_even": reverse_even_mutator,
    "reverse_all": reverse_all_mutator,
    "drop_even": drop_even_mutator,
    "drop_odd": drop_odd_mutator,
    "swap_adjacent": swap_adjacent_mutator,
    "lie_to_first": lie_to_first_mutator,
    "steer_l_optimal": steer_l_optimal_mutator,
    "steer_r_optimal": steer_r_optimal_mutator,
}


def compose_mutators(*mutators: Mutator) -> Mutator:
    """Sequential composition: each mutator sees the previous one's output.

    ``None`` (a dropped message) short-circuits — once withheld, a
    payload stays withheld.
    """

    def mutate(round_now: int, dst: PartyId, payload: object) -> object:
        for mutator in mutators:
            if payload is None:
                return None
            payload = mutator(round_now, dst, payload)
        return payload

    return mutate


def resolve_mutator(spec: str | Mutator | None) -> Mutator | None:
    """Turn a mutator name (or a ready callable, or ``None``) into a mutator.

    Composite names join primitives with ``+`` (``"reverse_even+drop_odd"``)
    and resolve to their sequential composition.
    """
    if spec is None or callable(spec):
        return spec
    try:
        parts = [MUTATORS[name]() for name in spec.split("+")]
    except KeyError as exc:
        raise AdversaryError(
            f"unknown mutator {spec!r}; known primitives: {sorted(MUTATORS)} "
            "(compose with '+')"
        ) from exc
    if len(parts) == 1:
        return parts[0]
    return compose_mutators(*parts)
