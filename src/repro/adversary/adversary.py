"""Coordinated adversaries and canned byzantine behaviors.

The simulator hands the adversary a single
:class:`~repro.net.simulator.AdversaryWorld` through which all
corrupted parties act — the adversary is one entity, exactly as in the
paper's proofs.  :class:`BehaviorAdversary` is the workhorse for tests
and failure injection: it assigns an independent :class:`Behavior` to
each corrupted party (crash, stay silent, babble, equivocate, or run
the honest code with mutations).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import AdversaryError
from repro.ids import PartyId
from repro.net.process import Context, Envelope, Process

__all__ = [
    "Adversary",
    "Behavior",
    "BehaviorAdversary",
    "SilentBehavior",
    "CrashBehavior",
    "HonestBehavior",
    "RandomNoiseBehavior",
    "EquivocatingBehavior",
]


class Adversary(ABC):
    """Base class for coordinated adversaries.

    Subclasses receive the world at attach time and act once per round
    via :meth:`step`, seeing the round's honest messages addressed to
    corrupted parties (rushing) before emitting their own through
    ``world.send``.
    """

    def __init__(self, corrupted: Iterable[PartyId]) -> None:
        self.initial_corruptions = frozenset(corrupted)
        self.world = None

    def attach(self, world) -> None:
        """Called by the simulator before round 0."""
        self.world = world

    @abstractmethod
    def step(self, round_now: int, view: Sequence[Envelope]) -> None:
        """Act for all corrupted parties in ``round_now``."""


class Behavior(ABC):
    """A per-party byzantine strategy used by :class:`BehaviorAdversary`."""

    def attach(self, world, party: PartyId) -> None:
        """Called once before round 0; default stores the bindings."""
        self.world = world
        self.party = party

    @abstractmethod
    def act(self, round_now: int, inbox: Sequence[Envelope]) -> None:
        """Act for ``party`` in ``round_now`` given its deliveries."""


class BehaviorAdversary(Adversary):
    """Assigns one :class:`Behavior` to each corrupted party."""

    def __init__(self, behaviors: Mapping[PartyId, Behavior]) -> None:
        super().__init__(behaviors.keys())
        self._behaviors = dict(behaviors)

    def attach(self, world) -> None:
        super().attach(world)
        for party, behavior in sorted(self._behaviors.items()):
            behavior.attach(world, party)

    def step(self, round_now: int, view: Sequence[Envelope]) -> None:
        by_party: dict[PartyId, list[Envelope]] = {p: [] for p in self._behaviors}
        for envelope in view:
            if envelope.dst in by_party:
                by_party[envelope.dst].append(envelope)
        for party in sorted(self._behaviors):
            self._behaviors[party].act(round_now, tuple(by_party[party]))


class SilentBehavior(Behavior):
    """Never sends anything — the "chooses not to participate" byzantine party."""

    def act(self, round_now: int, inbox: Sequence[Envelope]) -> None:
        return None


class HonestBehavior(Behavior):
    """Runs the party's honest process (optionally mutating outgoing payloads).

    The corrupted party is byzantine on paper but behaves correctly —
    useful as a baseline and as the chassis for
    :class:`EquivocatingBehavior` / :class:`CrashBehavior`.
    """

    def __init__(self, process: Process, topology, signer=None) -> None:
        self._process = process
        self._ctx = None
        self._topology = topology
        self._signer = signer

    def attach(self, world, party: PartyId) -> None:
        super().attach(world, party)
        if self._signer is None and world.authenticated:
            self._signer = world.signer_for(party)
        self._ctx = Context(party, self._topology, self._signer)

    def act(self, round_now: int, inbox: Sequence[Envelope]) -> None:
        if self._ctx.halted:
            return
        self._ctx.round = round_now
        self._process.on_round(self._ctx, tuple(inbox))
        for dst, payload in self._ctx._drain_outbox():
            mutated = self.mutate(round_now, dst, payload)
            if mutated is not None:
                self.world.send(self.party, dst, mutated)

    def mutate(self, round_now: int, dst: PartyId, payload: object) -> object | None:
        """Hook: transform (or drop, by returning None) an outgoing payload."""
        return payload


class CrashBehavior(HonestBehavior):
    """Behaves honestly, then crashes (sends nothing) from ``crash_round`` on."""

    def __init__(self, process: Process, topology, crash_round: int, signer=None) -> None:
        super().__init__(process, topology, signer)
        if crash_round < 0:
            raise AdversaryError(f"crash_round must be >= 0, got {crash_round}")
        self.crash_round = crash_round

    def act(self, round_now: int, inbox: Sequence[Envelope]) -> None:
        if round_now >= self.crash_round:
            return None
        super().act(round_now, inbox)


class EquivocatingBehavior(HonestBehavior):
    """Runs the honest process but rewrites payloads per recipient.

    ``mutator(round, dst, payload)`` returns the payload to send (or
    ``None`` to drop), letting tests mount targeted equivocation without
    reimplementing the protocol.
    """

    def __init__(
        self,
        process: Process,
        topology,
        mutator: Callable[[int, PartyId, object], object | None],
        signer=None,
    ) -> None:
        super().__init__(process, topology, signer)
        self._mutator = mutator

    def mutate(self, round_now: int, dst: PartyId, payload: object) -> object | None:
        return self._mutator(round_now, dst, payload)


class RandomNoiseBehavior(Behavior):
    """Sends random garbage to random neighbors every round.

    The noise is drawn from a seeded generator, so runs stay
    reproducible.  Used for fuzz-style failure injection: correct
    protocols must shrug this off.
    """

    def __init__(self, seed: int = 0, fanout: int = 3) -> None:
        self._rng = random.Random(seed)
        self._fanout = fanout

    def act(self, round_now: int, inbox: Sequence[Envelope]) -> None:
        neighbors = self.world.topology.neighbors(self.party)
        honest_neighbors = [n for n in neighbors if n not in self.world.corrupted]
        if not honest_neighbors:
            return
        for _ in range(min(self._fanout, len(honest_neighbors))):
            dst = self._rng.choice(honest_neighbors)
            payload = self._random_payload()
            self.world.send(self.party, dst, payload)

    def _random_payload(self) -> object:
        choice = self._rng.randrange(4)
        if choice == 0:
            return self._rng.randrange(1 << 30)
        if choice == 1:
            return ("junk", self._rng.randrange(100), str(self._rng.random()))
        if choice == 2:
            return (
                "mux",
                self._rng.randrange(10),
                ("value", self._rng.randrange(5)),
            )
        return None
