"""Adversary structures: who can be corrupted together.

The paper's adversary corrupts up to ``tL`` parties in ``L`` and up to
``tR`` in ``R`` — the *product* of two threshold structures, written
``Z* = {SL u SR : SL <= L, SR <= R, |SL| <= tL, |SR| <= tR}`` in
Appendix A.3.  General adversary structures (Fitzi-Maurer [9]) are any
subset-closed family of corruptible sets.

Two predicates drive everything:

* **Q3** — no three admissible sets cover all parties.  By [9, Thm 2]
  this is exactly when unauthenticated BB is solvable; for the product
  structure it reduces analytically to ``tL < k/3 or tR < k/3``
  (Lemma 4), which the tests cross-check by brute force.
* **Q2** — no two admissible sets cover all parties (an honest majority
  in the generalized sense).

``king_set`` returns a smallest *non-admissible* party set: at least
one of them must stay honest, which is what the phase-king protocol
needs from its king sequence.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations
from typing import FrozenSet, Iterable, Iterator

from repro.errors import AdversaryError
from repro.ids import PartyId, all_parties, left_side, right_side

__all__ = [
    "AdversaryStructure",
    "ThresholdStructure",
    "ProductThresholdStructure",
    "ExplicitStructure",
    "satisfies_q3",
    "satisfies_q2",
]

PartySet = FrozenSet[PartyId]


class AdversaryStructure(ABC):
    """A subset-closed family of corruptible party sets."""

    #: The universe of parties the structure speaks about.
    parties: tuple[PartyId, ...]

    @abstractmethod
    def permits(self, corrupt: Iterable[PartyId]) -> bool:
        """True when the adversary may corrupt exactly the set ``corrupt``."""

    @abstractmethod
    def maximal_sets(self) -> Iterator[PartySet]:
        """Iterate over the maximal admissible sets (may be combinatorial)."""

    def king_set(self) -> tuple[PartyId, ...]:
        """A smallest party set that is *not* admissible (>= 1 member honest).

        Default implementation: brute-force over subset sizes.  Subclasses
        override with analytic choices.  Raises when every subset is
        admissible (the adversary can corrupt everyone — no king sequence
        exists).
        """
        universe = sorted(self.parties)
        for size in range(1, len(universe) + 1):
            for candidate in combinations(universe, size):
                if not self.permits(candidate):
                    return tuple(candidate)
        raise AdversaryError("structure admits corrupting all parties; no king set exists")


class ThresholdStructure(AdversaryStructure):
    """The classic ``t``-of-``n`` threshold adversary."""

    def __init__(self, parties: Iterable[PartyId], t: int) -> None:
        self.parties = tuple(sorted(parties))
        if not self.parties:
            raise AdversaryError("threshold structure needs a non-empty party set")
        if t < 0 or t > len(self.parties):
            raise AdversaryError(f"t must lie in [0, {len(self.parties)}], got {t}")
        self.t = t

    def permits(self, corrupt: Iterable[PartyId]) -> bool:
        corrupt_set = frozenset(corrupt)
        return corrupt_set <= frozenset(self.parties) and len(corrupt_set) <= self.t

    def maximal_sets(self) -> Iterator[PartySet]:
        for combo in combinations(self.parties, self.t):
            yield frozenset(combo)

    def king_set(self) -> tuple[PartyId, ...]:
        if self.t >= len(self.parties):
            raise AdversaryError("structure admits corrupting all parties; no king set exists")
        return tuple(self.parties[: self.t + 1])

    def __repr__(self) -> str:
        return f"ThresholdStructure(n={len(self.parties)}, t={self.t})"


class ProductThresholdStructure(AdversaryStructure):
    """The paper's adversary: up to ``tL`` corruptions in L, ``tR`` in R."""

    def __init__(self, k: int, tL: int, tR: int) -> None:
        if k <= 0:
            raise AdversaryError(f"k must be positive, got {k}")
        if not (0 <= tL <= k and 0 <= tR <= k):
            raise AdversaryError(f"thresholds must lie in [0, k={k}], got tL={tL}, tR={tR}")
        self.k = k
        self.tL = tL
        self.tR = tR
        self.parties = all_parties(k)

    def permits(self, corrupt: Iterable[PartyId]) -> bool:
        corrupt_set = frozenset(corrupt)
        if not corrupt_set <= frozenset(self.parties):
            return False
        left = sum(1 for p in corrupt_set if p.is_left())
        right = len(corrupt_set) - left
        return left <= self.tL and right <= self.tR

    def maximal_sets(self) -> Iterator[PartySet]:
        for left in combinations(left_side(self.k), self.tL):
            for right in combinations(right_side(self.k), self.tR):
                yield frozenset(left) | frozenset(right)

    def king_set(self) -> tuple[PartyId, ...]:
        """Smallest non-admissible set: ``min(tL, tR) + 1`` parties of one side.

        Exists unless ``tL = tR = k`` (everyone corruptible).
        """
        options: list[tuple[PartyId, ...]] = []
        if self.tL < self.k:
            options.append(left_side(self.k)[: self.tL + 1])
        if self.tR < self.k:
            options.append(right_side(self.k)[: self.tR + 1])
        if not options:
            raise AdversaryError("structure admits corrupting all parties; no king set exists")
        return min(options, key=len)

    def satisfies_q3(self) -> bool:
        """Analytic Q3: ``tL < k/3 or tR < k/3`` (Lemma 4 / proof in A.3)."""
        return 3 * self.tL < self.k or 3 * self.tR < self.k

    def satisfies_q2(self) -> bool:
        """Analytic Q2: no two admissible sets cover P <=> tL < k/2 or tR < k/2."""
        return 2 * self.tL < self.k or 2 * self.tR < self.k

    def __repr__(self) -> str:
        return f"ProductThresholdStructure(k={self.k}, tL={self.tL}, tR={self.tR})"


class ExplicitStructure(AdversaryStructure):
    """A structure given by an explicit list of maximal admissible sets."""

    def __init__(self, parties: Iterable[PartyId], maximal: Iterable[Iterable[PartyId]]) -> None:
        self.parties = tuple(sorted(parties))
        universe = frozenset(self.parties)
        self._maximal: tuple[PartySet, ...] = tuple(
            frozenset(s) for s in maximal
        )
        for candidate in self._maximal:
            if not candidate <= universe:
                raise AdversaryError(f"admissible set {sorted(map(str, candidate))} leaves the universe")
        if not self._maximal:
            self._maximal = (frozenset(),)

    def permits(self, corrupt: Iterable[PartyId]) -> bool:
        corrupt_set = frozenset(corrupt)
        return any(corrupt_set <= candidate for candidate in self._maximal)

    def maximal_sets(self) -> Iterator[PartySet]:
        yield from self._maximal

    def __repr__(self) -> str:
        sets = [sorted(map(str, s)) for s in self._maximal]
        return f"ExplicitStructure({sets})"


def satisfies_q3(structure: AdversaryStructure) -> bool:
    """Brute-force Q3 check: no three admissible sets cover all parties.

    Uses the analytic shortcut when the structure provides one; the tests
    exercise both paths against each other on small instances.
    """
    analytic = getattr(structure, "satisfies_q3", None)
    if callable(analytic) and not isinstance(structure, ExplicitStructure):
        return bool(analytic())
    return _q_by_enumeration(structure, 3)


def satisfies_q2(structure: AdversaryStructure) -> bool:
    """Brute-force Q2 check: no two admissible sets cover all parties."""
    analytic = getattr(structure, "satisfies_q2", None)
    if callable(analytic) and not isinstance(structure, ExplicitStructure):
        return bool(analytic())
    return _q_by_enumeration(structure, 2)


def _q_by_enumeration(structure: AdversaryStructure, arity: int) -> bool:
    universe = frozenset(structure.parties)
    maximal = list(structure.maximal_sets())
    if not maximal:
        return True

    def cover(depth: int, covered: PartySet) -> bool:
        if covered == universe:
            return True
        if depth == 0:
            return False
        return any(cover(depth - 1, covered | candidate) for candidate in maximal)

    return not cover(arity, frozenset())
