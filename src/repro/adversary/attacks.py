"""Executable impossibility constructions (Lemmas 5, 7 and 13).

Each of the paper's impossibility proofs builds a *twisted system*: a
covering graph of the real network in which every party appears in one
or two copies, some copies are played by real honest parties, and the
rest are simulated (honestly!) by the byzantine parties.  Because the
protocols are deterministic, the indistinguishability arguments become
*literal equalities* here: an honest party's view — and therefore its
output — in the attack scenario is bit-for-bit the view it has in some
benign scenario where the protocol is expected to work.

The generic machinery (:class:`TwistedSpec`, :func:`run_twisted_scenario`,
:func:`run_attack`) takes any protocol recipe; the three concrete
constructors reproduce the paper's figures:

* :func:`lemma5_spec` — Fig. 2: fully-connected unauthenticated,
  ``k = 3``, ``tL = tR = 1``; the 12-node duplicated system;
* :func:`lemma7_spec` — Fig. 3: bipartite unauthenticated, ``k = 2``,
  ``tL = 0``, ``tR = 1``; the 8-cycle;
* :func:`lemma13_spec` — Fig. 4: one-sided authenticated, ``k = 3``,
  ``tR = k``, ``tL = 1``; two disconnected simulated halves.

Every attack ends with at least one sSM property violated in at least
one scenario — that is the theorem, and the benchmarks assert it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.adversary.adversary import Adversary
from repro.adversary.virtual import Route, VirtualSystem
from repro.core.problem import Setting
from repro.core.runner import build_party_with_list, recommended_max_rounds
from repro.core.simplified import favorite_first_list
from repro.core.verdict import PropertyReport, check_ssm
from repro.crypto.signatures import KeyRing
from repro.errors import AdversaryError
from repro.ids import PartyId, all_parties
from repro.net.process import Envelope, NullProcess, Process
from repro.net.simulator import RunResult, SyncNetwork

__all__ = [
    "Label",
    "TwistedSpec",
    "ScenarioOutcome",
    "AttackReport",
    "run_twisted_scenario",
    "run_attack",
    "lemma5_spec",
    "lemma7_spec",
    "lemma13_spec",
]

#: A copy of a party in the twisted system: ``(party, copy_index)``.
Label = tuple[PartyId, int]


@dataclass(frozen=True)
class TwistedSpec:
    """One impossibility construction, ready to run against any recipe.

    Attributes:
        name: short identifier (``"lemma5"`` ...).
        setting: the setting the attacked protocol is configured for.
        recipe: which protocol recipe to attack.
        labels: all copies in the twisted system.
        edges: the twisted graph (frozensets of two labels); must be a
            covering graph — each label has exactly one copy of each of
            its party's base-topology neighbors, or none (dropped arc).
        favorites: the sSM input (a party on the opposite side) of every
            copy.
        scenarios: per scenario name, which real party plays which copy;
            real parties without a role are the byzantine simulators.
        absent: per scenario name, copies that are *not* simulated
            (crashed parties in the benign scenarios; copies the
            adversary could not sign for in authenticated attacks).
        indistinguishable: triples ``(scenario_a, scenario_b, party)``
            whose outputs must coincide — the executable form of the
            proof's "cannot distinguish" steps.
    """

    name: str
    setting: Setting
    recipe: str
    labels: tuple[Label, ...]
    edges: frozenset
    favorites: Mapping[Label, PartyId]
    scenarios: Mapping[str, Mapping[PartyId, Label]]
    absent: Mapping[str, tuple[Label, ...]] = field(default_factory=dict)
    indistinguishable: tuple[tuple[str, str, PartyId], ...] = ()

    def neighbor_copy(self, label: Label, party: PartyId) -> Label | None:
        """The unique copy of ``party`` adjacent to ``label``, if any."""
        matches = [
            other
            for edge in self.edges
            if label in edge
            for other in edge
            if other != label and other[0] == party
        ]
        if len(matches) > 1:
            raise AdversaryError(
                f"{self.name}: {label} has multiple copies of {party} as neighbors"
            )
        return matches[0] if matches else None


@dataclass
class ScenarioOutcome:
    """The result of running one scenario of a twisted construction."""

    scenario: str
    corrupted: frozenset
    outputs: dict
    virtual_outputs: dict
    report: PropertyReport
    result: RunResult


@dataclass
class AttackReport:
    """All scenarios of one construction, plus the derived verdicts."""

    spec: TwistedSpec
    outcomes: dict = field(default_factory=dict)

    @property
    def any_violation(self) -> bool:
        """True when some scenario violates an sSM property — the theorem."""
        return any(not outcome.report.all_ok for outcome in self.outcomes.values())

    def indistinguishability_holds(self) -> dict:
        """Check every declared view-equality on the actual outputs."""
        checks: dict[tuple[str, str, PartyId], bool] = {}
        for scenario_a, scenario_b, party in self.spec.indistinguishable:
            out_a = self.outcomes[scenario_a].outputs.get(party, "<no output>")
            out_b = self.outcomes[scenario_b].outputs.get(party, "<no output>")
            checks[(scenario_a, scenario_b, party)] = out_a == out_b
        return checks

    def summary(self) -> str:
        lines = [
            f"attack {self.spec.name} on {self.spec.setting.describe()} [{self.spec.recipe}]"
        ]
        for name, outcome in self.outcomes.items():
            outs = ", ".join(f"{p}->{v}" for p, v in sorted(outcome.outputs.items()))
            lines.append(f"  scenario {name}: {outcome.report.summary()}  ({outs})")
        lines.append(f"  property violated somewhere: {self.any_violation}")
        for key, ok in self.indistinguishability_holds().items():
            lines.append(f"  views match {key[0]}~{key[1]} at {key[2]}: {ok}")
        return "\n".join(lines)


class TwistedAdversary(Adversary):
    """Drives the virtual system built from a spec scenario."""

    def __init__(self, corrupted, builder: Callable[[object], VirtualSystem]) -> None:
        super().__init__(corrupted)
        self._builder = builder
        self.system: VirtualSystem | None = None

    def attach(self, world) -> None:
        super().attach(world)
        self.system = self._builder(world)

    def step(self, round_now: int, view: Sequence[Envelope]) -> None:
        self.system.step(round_now, view)


def _party_factory(spec: TwistedSpec) -> Callable[[PartyId, PartyId], Process]:
    setting = spec.setting

    def factory(party: PartyId, favorite: PartyId) -> Process:
        lst = favorite_first_list(party, favorite, setting.k)
        return build_party_with_list(party, setting, lst, spec.recipe, force=True)

    return factory


def run_twisted_scenario(spec: TwistedSpec, scenario: str) -> ScenarioOutcome:
    """Execute one scenario of a twisted construction."""
    roles = dict(spec.scenarios[scenario])
    setting = spec.setting
    topology = setting.topology()
    everyone = all_parties(setting.k)
    corrupted = frozenset(everyone) - frozenset(roles)
    absent = set(spec.absent.get(scenario, ()))
    simulated = [
        label
        for label in spec.labels
        if label not in roles.values() and label not in absent
    ]
    factory = _party_factory(spec)

    # Sanity: every simulated neighbor of an honest role must have a
    # byzantine identity (only byzantine parties can speak for copies).
    for real, label in roles.items():
        if label[0] != real:
            raise AdversaryError(f"{real} cannot play a copy of {label[0]}")
        for neighbor in topology.neighbors(real):
            copy = spec.neighbor_copy(label, neighbor)
            if copy is None or copy in absent:
                continue
            if copy not in roles.values() and copy[0] not in corrupted:
                raise AdversaryError(
                    f"{spec.name}/{scenario}: simulated {copy} adjacent to honest "
                    f"{label} has an honest identity — construction broken"
                )

    processes: dict[PartyId, Process] = {}
    for party in everyone:
        if party in roles:
            processes[party] = factory(party, spec.favorites[roles[party]])
        else:
            processes[party] = NullProcess()

    label_player = {label: real for real, label in roles.items()}

    def build_virtual(world) -> VirtualSystem:
        system = VirtualSystem(world)
        for label in simulated:
            system.add_node(label, label[0], factory(label[0], spec.favorites[label]))
        for label in simulated:
            for neighbor in topology.neighbors(label[0]):
                copy = spec.neighbor_copy(label, neighbor)
                if copy is None or copy in absent:
                    system.set_route(label, neighbor, Route.drop())
                elif copy in label_player:
                    system.set_route(
                        label, neighbor, Route.to_real(label_player[copy], via=label[0])
                    )
                else:
                    system.set_route(label, neighbor, Route.to_node(copy))
        for real, label in roles.items():
            for neighbor in topology.neighbors(real):
                if neighbor not in corrupted:
                    continue
                copy = spec.neighbor_copy(label, neighbor)
                if copy is not None and copy not in label_player and copy not in absent:
                    system.bind_inbound(real, neighbor, copy)
        return system

    adversary = TwistedAdversary(corrupted, build_virtual)
    keyring = KeyRing(everyone) if setting.authenticated else None
    network = SyncNetwork(
        topology,
        processes,
        adversary=adversary,
        keyring=keyring,
        structure=setting.structure(),
        max_rounds=recommended_max_rounds(setting),
    )
    result = network.run()

    honest = frozenset(roles)
    favorites = {real: spec.favorites[label] for real, label in roles.items()}
    report = check_ssm(result, favorites, honest)
    return ScenarioOutcome(
        scenario=scenario,
        corrupted=corrupted,
        outputs={p: result.outputs.get(p) for p in sorted(honest)},
        virtual_outputs=dict(adversary.system.outputs()) if adversary.system else {},
        report=report,
        result=result,
    )


def run_attack(spec: TwistedSpec) -> AttackReport:
    """Run every scenario of a construction and aggregate."""
    report = AttackReport(spec=spec)
    for scenario in spec.scenarios:
        report.outcomes[scenario] = run_twisted_scenario(spec, scenario)
    return report


# -- concrete constructions -------------------------------------------------------------


def _edge(a: Label, b: Label) -> frozenset:
    return frozenset((a, b))


def _duplicate_edges(pairs: Sequence[tuple[PartyId, PartyId, bool]]) -> frozenset:
    """Duplicate base edges: ``straight`` keeps copies aligned, else crossed."""
    edges = set()
    for u, v, straight in pairs:
        if straight:
            edges.add(_edge((u, 1), (v, 1)))
            edges.add(_edge((u, 2), (v, 2)))
        else:
            edges.add(_edge((u, 1), (v, 2)))
            edges.add(_edge((u, 2), (v, 1)))
    return frozenset(edges)


def lemma5_spec() -> TwistedSpec:
    """Fig. 2: the 12-node duplicated system for ``k = 3``, ``tL = tR = 1``.

    Inputs: ``c1`` and ``v1`` are mutual favorites, ``a2`` and ``v2``
    are mutual favorites.  Expected violation: in the third scenario
    both honest ``a`` and honest ``c`` decide to match ``v`` —
    non-competition breaks (or the protocol already failed in one of
    the two benign scenarios).
    """
    a, b, c = PartyId("L", 0), PartyId("L", 1), PartyId("L", 2)
    u, v, w = PartyId("R", 0), PartyId("R", 1), PartyId("R", 2)
    # Edge twisting chosen so each scenario's honest quadruple mirrors a
    # clique of the real network and every simulated neighbor of an
    # honest copy carries a byzantine identity (see the figure).
    edges = _duplicate_edges(
        [
            # cross-side
            (a, u, True),
            (a, v, True),
            (a, w, False),
            (b, u, True),
            (b, v, True),
            (b, w, True),
            (c, u, False),
            (c, v, True),
            (c, w, True),
            # same-side
            (a, b, True),
            (a, c, False),
            (b, c, True),
            (u, v, True),
            (u, w, False),
            (v, w, True),
        ]
    )
    labels = tuple((p, i) for p in (a, b, c, u, v, w) for i in (1, 2))
    favorites: dict[Label, PartyId] = {}
    for party, copy in labels:
        favorites[(party, copy)] = u if party.is_left() else a
    favorites[(c, 1)] = v
    favorites[(v, 1)] = c
    favorites[(a, 2)] = v
    favorites[(v, 2)] = a

    scenarios = {
        "honest_a2_side": {a: (a, 2), b: (b, 2), u: (u, 2), v: (v, 2)},
        "honest_c1_side": {b: (b, 1), c: (c, 1), v: (v, 1), w: (w, 1)},
        "attack": {c: (c, 1), a: (a, 2), u: (u, 2), w: (w, 1)},
    }
    return TwistedSpec(
        name="lemma5",
        setting=Setting("fully_connected", False, 3, 1, 1),
        recipe="bb_direct",
        labels=labels,
        edges=edges,
        favorites=favorites,
        scenarios=scenarios,
        indistinguishable=(
            ("honest_a2_side", "attack", a),
            ("honest_c1_side", "attack", c),
        ),
    )


def lemma7_spec() -> TwistedSpec:
    """Fig. 3: the 8-cycle for bipartite ``k = 2``, ``tL = 0``, ``tR = 1``.

    The bipartite network on ``{a, b} x {c, d}`` is the 4-cycle
    ``a-c-b-d``; duplication yields the 8-cycle
    ``a1-c1-b1-d1-a2-c2-b2-d2-a1``.  Inputs: ``a1``/``c1`` mutual
    favorites, ``b2``/``c2`` mutual favorites.  Expected violation: in
    the attack scenario honest ``a`` and honest ``b`` both match ``c``.
    """
    a, b = PartyId("L", 0), PartyId("L", 1)
    c, d = PartyId("R", 0), PartyId("R", 1)
    cycle = [(a, 1), (c, 1), (b, 1), (d, 1), (a, 2), (c, 2), (b, 2), (d, 2)]
    edges = frozenset(
        _edge(cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
    )
    favorites: dict[Label, PartyId] = {
        (a, 1): c,
        (c, 1): a,
        (b, 2): c,
        (c, 2): b,
        (a, 2): d,
        (b, 1): d,
        (d, 1): a,
        (d, 2): b,
    }
    scenarios = {
        "honest_copy1": {a: (a, 1), c: (c, 1), b: (b, 1)},
        "honest_copy2": {a: (a, 2), c: (c, 2), b: (b, 2)},
        "attack": {a: (a, 1), b: (b, 2), d: (d, 2)},
    }
    return TwistedSpec(
        name="lemma7",
        setting=Setting("bipartite", False, 2, 0, 1),
        recipe="bb_majority_relay",
        labels=tuple(cycle),
        edges=edges,
        favorites=favorites,
        scenarios=scenarios,
        indistinguishable=(
            ("honest_copy1", "attack", a),
            ("honest_copy2", "attack", b),
        ),
    )


def lemma13_spec() -> TwistedSpec:
    """Fig. 4: one-sided authenticated, ``tR = k = 3``, ``tL = 1``.

    The byzantine parties ``{b, u, v, w}`` split into two groups, each
    simulating one copy of themselves: group 1 interacts with honest
    ``a``, group 2 with honest ``c``.  Favorites: ``a`` and ``c`` both
    favor ``v``; ``v1`` favors ``a`` and ``v2`` favors ``c`` (the paper
    writes "v2's favorite is b", a typo — simplified stability needs
    the mutual pair ``(c, v2)``; see EXPERIMENTS.md).  Expected
    violation: honest ``a`` and ``c`` both match ``v``.
    """
    a, b, c = PartyId("L", 0), PartyId("L", 1), PartyId("L", 2)
    u, v, w = PartyId("R", 0), PartyId("R", 1), PartyId("R", 2)
    labels = tuple((p, g) for p in (a, b, c, u, v, w) for g in (1, 2))
    # Group g is a full copy of the one-sided network; the two groups are
    # disconnected.  (a, 2) and (c, 1) exist as labels but only play in
    # the benign scenarios, never as simulated nodes next to honest ones.
    edges = set()
    for g in (1, 2):
        members = [(a, g), (b, g), (c, g), (u, g), (v, g), (w, g)]
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                if first[0].is_left() and second[0].is_left():
                    continue  # one-sided: no L-L channels
                edges.add(_edge(first, second))
    favorites: dict[Label, PartyId] = {}
    for party, g in labels:
        favorites[(party, g)] = v if party.is_left() else a
    favorites[(a, 1)] = v
    favorites[(c, 2)] = v
    favorites[(v, 1)] = a
    favorites[(v, 2)] = c
    favorites[(u, 1)] = b
    favorites[(u, 2)] = b
    favorites[(w, 1)] = b
    favorites[(w, 2)] = b
    favorites[(b, 1)] = u
    favorites[(b, 2)] = u

    group1 = tuple((p, 1) for p in (a, b, c, u, v, w))
    group2 = tuple((p, 2) for p in (a, b, c, u, v, w))
    scenarios = {
        # a's benign view: everyone honest except c, which crashed.
        "honest_group1": {a: (a, 1), b: (b, 1), u: (u, 1), v: (v, 1), w: (w, 1)},
        # c's benign view: everyone honest except a, which crashed.
        "honest_group2": {b: (b, 2), c: (c, 2), u: (u, 2), v: (v, 2), w: (w, 2)},
        # The attack: b, u, v, w simulate both groups; the honest copies
        # of c (group 1) and a (group 2) do not exist — the adversary
        # could not sign for them anyway.
        "attack": {a: (a, 1), c: (c, 2)},
    }
    absent = {
        "honest_group1": ((c, 1),) + group2,
        "honest_group2": ((a, 2),) + group1,
        "attack": ((c, 1), (a, 2)),
    }
    return TwistedSpec(
        name="lemma13",
        setting=Setting("one_sided", True, 3, 1, 3),
        recipe="bb_signed_relay",
        labels=labels,
        edges=frozenset(edges),
        favorites=favorites,
        scenarios=scenarios,
        absent=absent,
        indistinguishable=(
            ("honest_group1", "attack", a),
            ("honest_group2", "attack", c),
        ),
    )
