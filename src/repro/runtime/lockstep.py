"""The reference executor: sequential lock-step rounds.

This is the historical ``SyncNetwork`` execution strategy with the
historical performance envelope (no cross-run caches): parties step one
after another in canonical id order, one round at a time.  Every other
runtime is validated against it byte-for-byte, which is what makes it
the *reference* — when in doubt about semantics, this is the answer.
"""

from __future__ import annotations

from typing import Sequence

from repro.runtime.api import RunPlan, Runtime
from repro.runtime.kernel import RunResult

__all__ = ["LockstepRuntime"]


class LockstepRuntime(Runtime):
    """Sequential execution of one plan at a time (the reference)."""

    name = "lockstep"

    def run(self, plan: RunPlan) -> RunResult:
        return self._engine(plan).run()

    def run_many(self, plans: Sequence[RunPlan]) -> tuple[RunResult, ...]:
        return tuple(self.run(plan) for plan in plans)
