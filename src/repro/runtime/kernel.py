"""The protocol kernel: one round engine shared by every runtime.

This is the synchronous round engine that used to live in
:mod:`repro.net.simulator` (``SyncNetwork`` remains there as a thin
shim), promoted to the kernel of the :mod:`repro.runtime` layer.  It
implements the paper's communication model: lock-step rounds, all
messages delivered exactly one round after sending, topology-enforced
channels, and a *rushing* adversary — corrupted parties see the honest
messages addressed to them in the current round before choosing their
own messages for the same round.

Determinism: parties are processed in canonical id order, the engine
uses no wall clock and no global randomness, so a run is a pure
function of (topology, processes, adversary, seed material inside
those).  Every runtime — sequential lockstep, asyncio event loop,
batched — drives this same engine, which is why their results are
byte-identical (``tests/test_runtime_equivalence.py``).

Three kernel-level hooks extend the historical engine:

* **link faults** — an optional ``drop_rule(src, dst, round) -> bool``
  (see :mod:`repro.net.faults`) filters the channel itself: a dropped
  message is sent (and accounted) but delivered to no one, not even the
  rushing adversary's wiretap;
* **tracing** — an optional sink receives one structured
  :class:`~repro.runtime.trace.TraceEvent` per send/drop/output/halt/
  corruption; with no sink attached the kernel skips event
  construction entirely;
* **execution caches** — byte accounting and signing route through an
  :class:`~repro.runtime.cache.ExecutionCache`, which the batched
  runtime shares across many instances (the null cache preserves the
  reference path).

Termination is never assumed: the engine stops either when every
honest party has halted or when ``max_rounds`` is reached; the latter
shows up as ``terminated=False`` in the :class:`RunResult` and becomes
a termination-property violation in the verdict layer, not a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.crypto.signatures import KeyRing, SigningHandle
from repro.errors import AdversaryError, SimulationError
from repro.ids import PartyId
from repro.net.process import Context, Envelope, Process
from repro.net.topology import Topology
from repro.runtime.cache import NO_CACHE, NullExecutionCache
from repro.runtime.trace import TraceEvent, TraceSink

__all__ = ["AdversaryWorld", "RunResult", "RoundEngine", "DEFAULT_MAX_ROUNDS"]

DEFAULT_MAX_ROUNDS = 10_000


@dataclass
class RunResult:
    """Everything observable about one finished run."""

    outputs: dict[PartyId, object]
    halted: frozenset[PartyId]
    corrupted: frozenset[PartyId]
    rounds: int
    terminated: bool
    message_count: int
    byte_count: int
    trace: tuple[Envelope, ...] = field(default_factory=tuple)
    dropped: int = 0

    def honest(self) -> frozenset[PartyId]:
        """Honest parties = everyone minus the corrupted (needs outputs/halted keys)."""
        known = set(self.outputs) | set(self.halted) | set(self.corrupted)
        return frozenset(known - self.corrupted)

    def output_of(self, party: PartyId) -> object:
        """The declared output of ``party`` (raises for silent parties)."""
        if party not in self.outputs:
            raise SimulationError(f"{party} declared no output")
        return self.outputs[party]


class AdversaryWorld:
    """The adversary's capabilities: what corrupted parties can jointly do.

    Handed to the adversary at attach time.  All sends are topology
    checked — byzantine parties cannot invent channels — and signing is
    only available for corrupted parties' own identities, so forgery is
    impossible.
    """

    def __init__(self, network: "RoundEngine") -> None:
        self._network = network
        self.topology: Topology = network.topology
        self.k: int = network.topology.k
        self.round: int = 0

    @property
    def corrupted(self) -> frozenset[PartyId]:
        """Currently corrupted parties."""
        return frozenset(self._network._corrupted)

    @property
    def authenticated(self) -> bool:
        """Whether the run has a PKI."""
        return self._network.keyring is not None

    def send(self, src: PartyId, dst: PartyId, payload: object) -> None:
        """Send ``payload`` from corrupted ``src`` to ``dst`` this round."""
        if src not in self._network._corrupted:
            raise AdversaryError(f"adversary tried to send as honest party {src}")
        # Precomputed adjacency is the fast path; a miss falls back to
        # check_edge for its precise error (self-send, unknown party,
        # missing channel).  src is corrupted, hence a known member.
        if dst not in self.topology.neighbor_set(src):
            self.topology.check_edge(src, dst)
        self._network._queue_send(src, dst, payload)

    def signer_for(self, party: PartyId) -> SigningHandle:
        """Signing handle of a corrupted party (its own identity only)."""
        if party not in self._network._corrupted:
            raise AdversaryError(f"adversary asked for honest party {party}'s key")
        if self._network.keyring is None:
            raise AdversaryError("no PKI in this run")
        return self._network.keyring.handle_for(party)

    def verify(self, signer: PartyId, payload: object, signature: object) -> bool:
        """Public signature verification."""
        if self._network.keyring is None:
            raise AdversaryError("no PKI in this run")
        return self._network.keyring.verify(signer, payload, signature)

    def corrupt(self, party: PartyId) -> Process:
        """Adaptively corrupt ``party`` mid-run; returns its seized process.

        Rejected when the run's adversary structure does not permit the
        enlarged corruption set.
        """
        return self._network._corrupt(party)


class RoundEngine:
    """One synchronous run: topology + processes + (optional) adversary.

    Runtimes own the *scheduling* (sequential, asyncio, interleaved
    batches); the engine owns the *semantics*.  The round loop is
    exposed both whole (:meth:`run`) and one round at a time
    (:meth:`step_round`), which is what lets the batched runtime drive
    many engines through a single loop.
    """

    def __init__(
        self,
        topology: Topology,
        processes: Mapping[PartyId, Process],
        *,
        adversary=None,
        keyring: KeyRing | None = None,
        structure=None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        record_trace: bool = False,
        cache: NullExecutionCache | None = None,
        drop_rule=None,
        trace_sink: TraceSink | None = None,
        label: str = "",
    ) -> None:
        expected = set(topology.parties())
        if set(processes) != expected:
            raise SimulationError(
                f"processes must cover exactly the 2k parties of the topology; "
                f"got {len(processes)} for k={topology.k}"
            )
        self.topology = topology
        self.keyring = keyring
        self.structure = structure
        self.max_rounds = max_rounds
        self.record_trace = record_trace
        self.label = label

        self._cache = cache if cache is not None else NO_CACHE
        # One sizing function per engine: the shared batch memo when the
        # cache provides one, otherwise a fresh per-run memo (broadcasts
        # size each payload object once, not once per recipient).
        self._payload_size = self._cache.sizer()
        self._drop_rule = drop_rule
        self._trace_sink = trace_sink
        self._processes: dict[PartyId, Process] = dict(processes)
        self._corrupted: set[PartyId] = set()
        self._adversary = adversary
        self._contexts: dict[PartyId, Context] = {}
        self._pending: list[Envelope] = []
        self._next_pending: list[Envelope] = []
        self._previewed: set[int] = set()
        self._round = 0
        self._message_count = 0
        self._byte_count = 0
        self._dropped = 0
        self._trace: list[Envelope] = []
        # Pre-select the delivery loop: with no drop rule and no sink of
        # either kind attached, every per-envelope conditional in
        # _queue_send/_account is statically dead, so the common case
        # (plain sweeps, the whole batch executor) takes a branch-free
        # counters-only path chosen once per run instead of re-deciding
        # per message.  Faults and sinks are fixed at construction, so
        # the selection can never go stale.
        if drop_rule is None and trace_sink is None and not record_trace:
            self._queue_send = self._queue_send_fast  # type: ignore[method-assign]

        if adversary is not None:
            initial = frozenset(adversary.initial_corruptions)
            unknown = initial - expected
            if unknown:
                raise AdversaryError(f"unknown parties in corruption set: {sorted(unknown)}")
            self._check_structure(initial)
            self._corrupted.update(initial)

        encode_memo = self._cache.encode_memo()
        for party in sorted(expected - self._corrupted):
            signer = (
                self._cache.signer_for(keyring, party) if keyring is not None else None
            )
            self._contexts[party] = Context(
                party, topology, signer, encode_memo=encode_memo
            )
        self._party_order = tuple(sorted(self._contexts))

        self._world = AdversaryWorld(self)
        if adversary is not None:
            adversary.attach(self._world)

    # -- internal hooks ---------------------------------------------------------

    def _check_structure(self, corrupted: frozenset[PartyId]) -> None:
        if self.structure is not None and not self.structure.permits(corrupted):
            raise AdversaryError(
                f"corruption set {sorted(str(p) for p in corrupted)} exceeds the "
                "adversary structure"
            )

    def _emit(self, kind: str, party: object = "", peer: object = "", payload: str = "") -> None:
        self._trace_sink(
            TraceEvent(
                run=self.label,
                round=self._round,
                kind=kind,
                party=str(party),
                peer=str(peer),
                payload=payload,
            )
        )

    def _queue_send_fast(self, src: PartyId, dst: PartyId, payload: object) -> None:
        """The lossless, sink-free delivery path (selected at init)."""
        self._message_count += 1
        self._byte_count += self._payload_size(payload)
        self._next_pending.append(
            Envelope(src=src, dst=dst, sent_round=self._round, payload=payload)
        )

    def _queue_send(self, src: PartyId, dst: PartyId, payload: object) -> None:
        envelope = Envelope(src=src, dst=dst, sent_round=self._round, payload=payload)
        self._account(envelope)
        if self._drop_rule is not None and self._drop_rule(src, dst, self._round):
            # The channel eats the message: sent and accounted, but
            # delivered to no one — not even the rushing adversary.
            self._dropped += 1
            if self._trace_sink is not None:
                self._emit("drop", src, dst, repr(payload))
            return
        self._next_pending.append(envelope)

    def _account(self, envelope: Envelope) -> None:
        self._message_count += 1
        self._byte_count += self._payload_size(envelope.payload)
        if self.record_trace:
            self._trace.append(envelope)
        if self._trace_sink is not None:
            self._emit("send", envelope.src, envelope.dst, repr(envelope.payload))

    def _corrupt(self, party: PartyId) -> Process:
        if party in self._corrupted:
            raise AdversaryError(f"{party} is already corrupted")
        self._check_structure(frozenset(self._corrupted | {party}))
        self._corrupted.add(party)
        self._contexts.pop(party, None)
        self._party_order = tuple(sorted(self._contexts))
        if self._trace_sink is not None:
            self._emit("corrupt", party)
        return self._processes[party]

    # -- the round loop ------------------------------------------------------------

    def _begin_round(self) -> tuple[dict[PartyId, list[Envelope]], list[Envelope]]:
        """Deliver last round's messages: honest inboxes + late adversary view.

        Messages to parties that were corrupted *after* sending are
        rerouted to the adversary; messages already previewed at send
        time are not delivered twice.
        """
        self._world.round = self._round
        inboxes: dict[PartyId, list[Envelope]] = {}
        late_adversary_view: list[Envelope] = []
        previewed = self._previewed
        corrupted = self._corrupted
        setdefault = inboxes.setdefault
        for envelope in self._pending:
            if previewed and id(envelope) in previewed:
                previewed.discard(id(envelope))
                continue
            dst = envelope.dst
            if corrupted and dst in corrupted:
                if envelope.src not in corrupted:
                    late_adversary_view.append(envelope)
            else:
                setdefault(dst, []).append(envelope)
        self._pending = []
        return inboxes, late_adversary_view

    def _step_party(self, party: PartyId, inboxes: dict[PartyId, list[Envelope]]) -> None:
        """Run one honest party's round (no send draining)."""
        ctx = self._contexts[party]
        if ctx._halted:
            return
        ctx.round = self._round
        inbox = inboxes.get(party)
        if self._trace_sink is None:
            self._processes[party].on_round(ctx, tuple(inbox) if inbox else ())
            return
        had_output = ctx.has_output
        self._processes[party].on_round(ctx, tuple(inbox) if inbox else ())
        if ctx.has_output and not had_output:
            self._emit("output", party, payload=repr(ctx.current_output))
        if ctx._halted:
            self._emit("halt", party)

    def _drain_party(self, party: PartyId) -> None:
        """Queue a party's outbox (deterministic: called in canonical order)."""
        ctx = self._contexts.get(party)
        if ctx is None:
            return
        if not ctx._outbox:
            return
        if party in self._corrupted:
            # Corrupted while acting (adaptive): drop the outbox, the
            # adversary speaks for this party now.
            ctx._drain_outbox()
            return
        queue_send = self._queue_send
        for dst, payload in ctx._drain_outbox():
            queue_send(party, dst, payload)

    def _execute_honest(self, inboxes: dict[PartyId, list[Envelope]]) -> None:
        """Run all honest parties for this round, in canonical order."""
        for party in self._party_order:
            self._step_party(party, inboxes)
            self._drain_party(party)

    def _rushing_adversary(self, late_adversary_view: list[Envelope]) -> None:
        """Let the adversary see this round's honest sends to it, then speak."""
        if self._adversary is None:
            return
        adversary_preview = [
            e
            for e in self._next_pending
            if e.dst in self._corrupted and e.src not in self._corrupted
        ]
        self._previewed.update(id(e) for e in adversary_preview)
        view = tuple(late_adversary_view + adversary_preview)
        self._adversary.step(self._round, view)

    def _advance(self) -> bool:
        """Mature pending messages; True when every honest party halted."""
        self._pending = self._next_pending
        self._next_pending = []
        self._round += 1
        return all(ctx._halted for ctx in self._contexts.values())

    def step_round(self) -> bool:
        """Execute exactly one round; True when every honest party halted.

        Callers must check ``self._round < self.max_rounds`` before
        stepping — :meth:`run` shows the canonical loop.
        """
        inboxes, late_view = self._begin_round()
        self._execute_honest(inboxes)
        self._rushing_adversary(late_view)
        return self._advance()

    def _result(self, honest_done: bool) -> RunResult:
        outputs = {
            party: ctx.current_output
            for party, ctx in self._contexts.items()
            if ctx.has_output
        }
        halted = frozenset(party for party, ctx in self._contexts.items() if ctx.halted)
        return RunResult(
            outputs=outputs,
            halted=halted,
            corrupted=frozenset(self._corrupted),
            rounds=self._round,
            terminated=honest_done,
            message_count=self._message_count,
            byte_count=self._byte_count,
            trace=tuple(self._trace),
            dropped=self._dropped,
        )

    def run(self) -> RunResult:
        """Execute rounds until all honest parties halt or ``max_rounds`` passes."""
        honest_done = False
        while self._round < self.max_rounds:
            honest_done = self.step_round()
            if honest_done:
                break
        return self._result(honest_done)
