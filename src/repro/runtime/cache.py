"""Execution caches: the batching runtime's amortization substrate.

Protocol runs spend most of their Python time on three pure
computations: canonically encoding payloads (byte accounting), HMAC
signing, and signature verification.  Within one run the same payload
is encoded once per recipient; across a batch of related runs (a grid
sweep reuses one preference seed per ``k``) the *same* payloads are
signed by the *same* keys thousands of times.  An
:class:`ExecutionCache` memoizes all three, keyed by payload value, so
a batch of runs shares the work.

Correctness: every cached function is a pure function of its key —
``encode`` is deterministic and injective, HMAC is deterministic, and
key rings are keyed by identity (two rings with equal parties but
different key material never share entries).  Unhashable payloads
(adversarial garbage containing sets/dicts of unhashables) fall through
to direct computation.  The :data:`NO_CACHE` null object keeps the
reference lockstep path allocation-free.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.crypto.encoding import EncodeMemo, SizeMemo, encode, encoded_size
from repro.crypto.signatures import KeyRing, Signature
from repro.errors import ProtocolError
from repro.ids import PartyId

__all__ = [
    "ExecutionCache",
    "NullExecutionCache",
    "NO_CACHE",
    "CachedSigner",
    "merge_cache_stats",
]


def _direct_payload_size(payload: object) -> int:
    """Uncached byte accounting (the kernel's historical fallback rule).

    ``encoded_size`` without a memo is the size-only walk: the exact
    length of the canonical encoding, computed without building it.
    """
    try:
        return encoded_size(payload)
    except ProtocolError:
        return len(repr(payload).encode("utf-8"))


class NullExecutionCache:
    """The no-op cache: every operation computes directly.

    This is what the reference :class:`~repro.runtime.LockstepRuntime`
    uses, keeping its per-run behavior identical to the historical
    ``SyncNetwork``.  The one amortization it does hand out is
    :meth:`sizer` — a *per-run* byte-accounting memo: broadcasts size
    the same payload object once per recipient per round, so even the
    uncached reference path deduplicates that pure computation (a
    measured ~15-20% of serial sweep wall-clock; see
    ``docs/benchmarks.md``).  Byte counts are unchanged — the memo is
    the same :class:`~repro.crypto.encoding.EncodeMemo` machinery the
    batched runtime already proves semantics-preserving.
    """

    def payload_size(self, payload: object) -> int:
        """Size in bytes of the canonical encoding (repr fallback)."""
        return _direct_payload_size(payload)

    def encode_memo(self):
        """The shared :class:`EncodeMemo`, if any (None = uncached)."""
        return None

    def sizer(self):
        """A byte-accounting function for ONE run (fresh memo each call).

        The memo pins the payloads it sizes for the run's lifetime (a
        :class:`SizeMemo` stores only provably immutable values, so
        entries can never go stale); scoping it to a single engine keeps
        memory bounded by one run's payload set.  Sizing never builds
        canonical bytes — it is the arithmetic size-only walk, memoized
        with the same structural canonicalization the encoder uses.
        """
        memo = SizeMemo()

        def payload_size(payload: object) -> int:
            try:
                return memo.size(payload)
            except ProtocolError:
                return len(repr(payload).encode("utf-8"))

        return payload_size

    def signer_for(self, keyring: KeyRing, party: PartyId):
        """The signing handle a party's context should carry."""
        return keyring.handle_for(party)

    def memo(self, key: object, build):
        """Memoized ``build()`` — the null cache always rebuilds."""
        return build()


class ExecutionCache(NullExecutionCache):
    """Shared memoization for a batch of runs.

    One instance is scoped to one batch (the engine builds a fresh one
    per sweep), so cached values never leak across unrelated workloads
    and memory is reclaimed when the batch ends.

    The heart is one identity-keyed ``value -> canonical bytes`` memo
    (:class:`~repro.crypto.encoding.EncodeMemo`) threaded through
    :func:`repro.crypto.encoding.encode`'s recursion: byte accounting,
    signing, and verification all draw from it, so shared payload
    *substructures* (interned party ids, a signature embedded in a
    relay wrapper, a profile list inside an echo) encode once per batch
    even when the enclosing payloads differ.  Signatures and
    verification verdicts then key by the **canonical bytes** — bytes
    equality is exact (the encoding is injective), so cross-type value
    equality (``True == 1``) can never alias cache entries, and the
    memo-shared bytes objects make those lookups cheap (bytes cache
    their own hash).
    """

    def __init__(self) -> None:
        self._bytes = EncodeMemo()
        self._sizes = SizeMemo()
        self._signatures: dict[tuple, Signature] = {}
        self._verdicts: dict[tuple, bool] = {}
        self._memo: dict[object, object] = {}
        # Hit/miss counters per memo family — the bench subsystem reads
        # these through stats(); the increments are trivially cheap next
        # to the HMAC/encode work they stand in for.
        self._sign_hits = 0
        self._sign_misses = 0
        self._verify_hits = 0
        self._verify_misses = 0
        self._memo_hits = 0
        self._memo_misses = 0

    # -- canonical bytes ---------------------------------------------------------

    def encode(self, payload: object) -> bytes:
        """Canonical encoding through the shared memo."""
        return encode(payload, self._bytes)

    def encode_memo(self) -> EncodeMemo:
        return self._bytes

    def payload_size(self, payload: object) -> int:
        """Byte accounting through the batch-shared size-only memo.

        Sizing no longer routes through the byte encoder: only payloads
        that are actually signed or verified build canonical bytes (in
        :meth:`sign`/:meth:`verify` through ``self._bytes``), so the
        accounting walk for never-signed traffic is pure arithmetic.
        """
        try:
            return self._sizes.size(payload)
        except ProtocolError:
            return len(repr(payload).encode("utf-8"))

    def sizer(self):
        """Byte accounting through the batch-shared memo (no per-run memo)."""
        return self.payload_size

    # -- signatures --------------------------------------------------------------

    def sign(self, keyring: KeyRing, signer: PartyId, payload: object) -> Signature:
        """``signer``'s signature over ``payload``, memoized per ring by
        the payload's canonical bytes.

        A fresh signature also pre-seeds the verification memo: HMAC is
        deterministic, so a signature this cache just produced verifies
        by construction — recipients reach the verdict through
        :meth:`verify` (via :class:`CachedSigner`) without ever paying
        the HMAC recomputation, not even once.
        """
        try:
            encoded = self.encode(payload)
        except ProtocolError:
            return keyring._sign_as(signer, payload)
        key = (id(keyring), signer, encoded)
        signature = self._signatures.get(key)
        if signature is None:
            self._sign_misses += 1
            signature = keyring._sign_as(signer, payload, encoded=encoded)
            self._signatures[key] = signature
            self._verdicts[(id(keyring), signer, encoded, signature.tag)] = True
        else:
            self._sign_hits += 1
        return signature

    def verify(
        self, keyring: KeyRing, signer: PartyId, payload: object, signature: object
    ) -> bool:
        """Public verification, memoized per ring by canonical bytes."""
        if not isinstance(signature, Signature) or signature.signer != signer:
            return False  # same cheap rejections the keyring applies
        try:
            encoded = self.encode(payload)
        except ProtocolError:
            return keyring.verify(signer, payload, signature)
        key = (id(keyring), signer, encoded, signature.tag)
        verdict = self._verdicts.get(key)
        if verdict is None:
            self._verify_misses += 1
            verdict = keyring.verify(signer, payload, signature, encoded=encoded)
            self._verdicts[key] = verdict
        else:
            self._verify_hits += 1
        return verdict

    def signer_for(self, keyring: KeyRing, party: PartyId) -> "CachedSigner":
        return CachedSigner(self, keyring, party)

    # -- warm state (persistent / cross-process seeding) ---------------------------

    def warm_values(self, values: Sequence[object]) -> None:
        """Pre-encode and pre-size a snapshot of canonical values.

        The values come from :meth:`EncodeMemo.snapshot` (possibly
        pickled across a process or host boundary); warming replays them
        through the normal encode and size walks, so it can only pre-pay
        work, never corrupt it.
        """
        bytes_memo = self._bytes
        size_memo = self._sizes
        for value in values:
            encode(value, bytes_memo)
            size_memo.size(value)

    def signature_snapshot(self, rings: Mapping[object, KeyRing]) -> dict:
        """Persistable signature entries, grouped by the callers' ring labels.

        ``rings`` maps a stable label (the engine uses ``k`` — key rings
        are deterministic per ``k``) to the ring object; entries for
        rings not in the mapping are skipped.  Each entry is
        ``(signer, canonical bytes, tag)`` — everything needed to
        re-key the memo in another process.
        """
        labels = {id(ring): label for label, ring in rings.items()}
        grouped: dict[object, list] = {}
        for (ring_id, signer, encoded), signature in self._signatures.items():
            label = labels.get(ring_id)
            if label is not None:
                grouped.setdefault(label, []).append((signer, encoded, signature.tag))
        return {label: tuple(entries) for label, entries in grouped.items()}

    def restore_signatures(self, rings: Mapping[object, KeyRing], snapshot: Mapping) -> None:
        """Warm the sign/verify memos from a :meth:`signature_snapshot`.

        Sound under the same determinism that makes the memos correct in
        the first place: ring key material is a pure function of the
        ring's seed and parties, and HMAC is deterministic, so a
        snapshotted tag is exactly what re-signing would produce.  The
        disk layer versions snapshots by a code fingerprint
        (:func:`repro.runtime.diskcache.cache_version`), so entries from
        a different encoding or signing scheme never reach here.
        """
        for label, entries in snapshot.items():
            ring = rings.get(label)
            if ring is None:
                continue
            ring_id = id(ring)
            signatures = self._signatures
            verdicts = self._verdicts
            for signer, encoded, tag in entries:
                signatures.setdefault((ring_id, signer, encoded), Signature(signer, tag))
                verdicts.setdefault((ring_id, signer, encoded, tag), True)

    # -- generic memoization ------------------------------------------------------

    def memo(self, key: object, build):
        """``build()`` memoized under ``key`` (for pure, immutable values)."""
        try:
            value = self._memo.get(key)
        except TypeError:
            return build()
        if value is None:
            self._memo_misses += 1
            value = build()
            self._memo[key] = value
        else:
            self._memo_hits += 1
        return value

    # -- introspection -------------------------------------------------------------

    @staticmethod
    def _family(hits: int, misses: int, entries: int) -> dict:
        total = hits + misses
        return {
            "entries": entries,
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }

    def stats(self) -> dict:
        """Hit/miss statistics per memo family (plain JSON-ready dict).

        ``encode`` reports entry counts only — the identity-map fast
        path is too hot to count on, and its sharing shows up in the
        signature/verification hit rates anyway.
        """
        return {
            "signatures": self._family(
                self._sign_hits, self._sign_misses, len(self._signatures)
            ),
            "verifications": self._family(
                self._verify_hits, self._verify_misses, len(self._verdicts)
            ),
            "memo": self._family(self._memo_hits, self._memo_misses, len(self._memo)),
            "solvability": self._solvability_family(),
            "encode": self._bytes.entry_counts(),
            "size": self._sizes.entry_counts(),
        }

    @staticmethod
    def _solvability_family() -> dict:
        """The verdict memo's counters, shaped like the other families.

        Unlike the batch-scoped families above this memo is
        *process-global* (an unbounded ``lru_cache`` on the pure
        oracle), so within one process every cache reports the same
        numbers; across parallel workers each process reports its own.
        """
        from repro.core.solvability import solvability_cache_stats

        counters = solvability_cache_stats()
        return ExecutionCache._family(
            counters["hits"], counters["misses"], counters["entries"]
        )


def merge_cache_stats(per_worker: Sequence[Mapping]) -> dict:
    """Aggregate several :meth:`ExecutionCache.stats` dicts into one.

    The parallel executor runs one cache per worker shard; callers see
    the sweep-level view: hits/misses/entries summed per memo family
    (hit rates recomputed over the sums), encode-memo entry counts
    summed, and the untouched per-worker dicts preserved under
    ``"workers"`` so shard-level behavior (a cold shard, a skewed
    chunking) stays diagnosable from the same JSON.
    """
    merged: dict = {
        family: {"entries": 0, "hits": 0, "misses": 0}
        for family in ("signatures", "verifications", "memo", "solvability")
    }
    encode_totals: dict[str, int] = {}
    size_totals: dict[str, int] = {}
    for stats in per_worker:
        for family, sums in merged.items():
            table = stats.get(family, {})
            for key in ("entries", "hits", "misses"):
                sums[key] += int(table.get(key, 0))
        for key, count in stats.get("encode", {}).items():
            encode_totals[key] = encode_totals.get(key, 0) + int(count)
        for key, count in stats.get("size", {}).items():
            size_totals[key] = size_totals.get(key, 0) + int(count)
    for sums in merged.values():
        total = sums["hits"] + sums["misses"]
        sums["hit_rate"] = round(sums["hits"] / total, 4) if total else 0.0
    merged["encode"] = encode_totals
    merged["size"] = size_totals
    merged["workers"] = [dict(stats) for stats in per_worker]
    return merged


#: The shared null cache (stateless, safe to reuse everywhere).
NO_CACHE = NullExecutionCache()


class CachedSigner:
    """A drop-in :class:`~repro.crypto.signatures.SigningHandle` that
    routes signing and verification through an :class:`ExecutionCache`.

    Like the real handle it is bound to one identity — the cache cannot
    be used to sign as anyone else, so the unforgeability argument of
    :mod:`repro.crypto.signatures` is unchanged.
    """

    def __init__(self, cache: ExecutionCache, ring: KeyRing, owner: PartyId) -> None:
        self._cache = cache
        self._ring = ring
        self.owner = owner

    def sign(self, payload: object) -> Signature:
        """Sign ``payload`` as the owning party."""
        return self._cache.sign(self._ring, self.owner, payload)

    def verify(self, signer: PartyId, payload: object, signature: object) -> bool:
        """Verify any party's signature (PKI lookup)."""
        return self._cache.verify(self._ring, signer, payload, signature)
