"""Persistent on-disk warm cache for the execution plane.

Every bench, conform, and CI run used to start with cold memos: the
canonical-encoding tables, the HMAC sign/verify memos, and the
solvability verdict memo were all rebuilt from nothing, per process,
every time — pure recomputation of values that are deterministic
functions of the workload.  This module gives those memos a disk layer
so repeated runs start hot:

* **content-addressed**: entries key by a SHA-256 over the ordered spec
  JSONs of the workload (:func:`sweep_key`) — same sweep, same entry;
* **versioned by code fingerprint**: all entries live under a directory
  named by :func:`cache_version`, a hash of the encoding/signing/
  solvability sources plus a schema counter.  Any change to the code
  that produced cached values changes the fingerprint, so stale entries
  are never *read* (they are simply orphaned and pruned lazily);
* **atomic**: writes go to a temp file in the destination directory and
  are published with ``os.replace``, so concurrent writers and killed
  processes can never publish a torn entry — last writer wins, and both
  writers produce identical bytes anyway (the values are deterministic);
* **opt-in**: disabled unless ``REPRO_CACHE_DIR`` is set (or an explicit
  root is given).  A disabled cache reads as all-misses and swallows
  writes, so call sites need no branching.

Trust model: the cache directory is trusted the same way the pickled
warm-cache seed the parallel executor ships to its workers is trusted —
it is local state produced by this package for itself.  Do not point
``REPRO_CACHE_DIR`` at a directory hostile processes can write.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Mapping, Sequence

from repro.core.solvability import cached_is_solvable
from repro.crypto.signatures import KeyRing
from repro.runtime.cache import ExecutionCache

__all__ = [
    "DiskCache",
    "cache_version",
    "sweep_key",
    "capture_warm_state",
    "restore_warm_state",
]

#: Environment variable naming the cache root; unset/empty = disabled.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every entry regardless of source fingerprints
#: (e.g. when the warm-state *layout* changes but the sources did not).
_SCHEMA = 1

#: Modules whose source text feeds the code fingerprint: the producers
#: of every value the cache persists.  Anything that changes what those
#: values *are* lives in one of these files.
_FINGERPRINT_MODULES = (
    "repro.crypto.encoding",
    "repro.crypto.signatures",
    "repro.core.solvability",
    "repro.runtime.cache",
    "repro.runtime.diskcache",
)

_VERSION: str | None = None


def cache_version() -> str:
    """The fingerprint directory name current code writes under.

    A short SHA-256 over the schema counter and the source text of the
    modules that produce cached values.  Computed once per process.
    """
    global _VERSION
    if _VERSION is None:
        import importlib

        digest = hashlib.sha256(f"repro-diskcache/{_SCHEMA}".encode("ascii"))
        for name in _FINGERPRINT_MODULES:
            module = importlib.import_module(name)
            path = getattr(module, "__file__", None)
            if path and os.path.exists(path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _VERSION = digest.hexdigest()[:16]
    return _VERSION


def sweep_key(specs: Sequence[object]) -> str:
    """Content hash of an ordered workload (specs with ``to_json``)."""
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(spec.to_json().encode("utf-8"))  # type: ignore[attr-defined]
        digest.update(b"\n")
    return digest.hexdigest()


class DiskCache:
    """A content-addressed, fingerprint-versioned blob store.

    ``DiskCache()`` resolves its root from ``REPRO_CACHE_DIR``; pass an
    explicit ``root`` to pin one (tests do), or ``root=""`` to force a
    disabled instance.  All methods are safe on a disabled cache.
    """

    def __init__(self, root: str | None = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, "")
        self.root = root or None

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def path_for(self, namespace: str, key: str) -> str:
        if self.root is None:
            raise ValueError("disk cache is disabled (no root configured)")
        return os.path.join(self.root, cache_version(), namespace, f"{key}.bin")

    # -- raw bytes ---------------------------------------------------------------

    def get(self, namespace: str, key: str) -> bytes | None:
        """The stored bytes, or None (missing, disabled, or unreadable)."""
        if self.root is None:
            return None
        try:
            with open(self.path_for(namespace, key), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def put(self, namespace: str, key: str, data: bytes) -> bool:
        """Atomically publish ``data``; returns False when disabled/failed.

        Concurrent writers are safe: each writes its own temp file in
        the destination directory and ``os.replace`` swaps it in whole.
        """
        if self.root is None:
            return False
        path = self.path_for(namespace, key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    # -- pickled objects ---------------------------------------------------------

    def get_object(self, namespace: str, key: str) -> object | None:
        """Unpickle a stored entry; corrupt entries read as misses."""
        data = self.get(namespace, key)
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception:
            # A torn or stale entry (should be impossible given atomic
            # writes + versioning, but disks are disks): drop it.
            try:
                os.unlink(self.path_for(namespace, key))
            except OSError:
                pass
            return None

    def put_object(self, namespace: str, key: str, value: object) -> bool:
        try:
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        return self.put(namespace, key, data)

    # -- maintenance -------------------------------------------------------------

    def prune_stale_versions(self) -> int:
        """Delete entry trees for fingerprints other than the current one."""
        if self.root is None:
            return 0
        current = cache_version()
        removed = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        import shutil

        for name in names:
            path = os.path.join(self.root, name)
            if name != current and os.path.isdir(path):
                shutil.rmtree(path, ignore_errors=True)
                removed += 1
        return removed


# -- warm execution state ------------------------------------------------------


def capture_warm_state(cache: ExecutionCache, rings: Mapping[object, KeyRing]) -> dict:
    """A picklable snapshot of everything a fresh cache can be primed with.

    ``rings`` labels the key rings whose signature entries should ride
    along (the engine labels them by ``k`` — ring key material is a
    deterministic function of ``k``, so labels are stable across
    processes and hosts).
    """
    return {
        "encode": cache.encode_memo().snapshot(),
        "signatures": cache.signature_snapshot(rings),
        "solvability": cached_is_solvable.export_entries(),
    }


def restore_warm_state(
    cache: ExecutionCache, rings: Mapping[object, KeyRing], state: Mapping
) -> None:
    """Prime ``cache`` (and the process-wide verdict memo) from a snapshot.

    Restoring replays encode/size walks and re-keys deterministic
    signature tags — it can only pre-pay work.  See the module docstring
    for why entries are trustworthy (fingerprint versioning + local
    trust model).
    """
    values = state.get("encode", ())
    if values:
        cache.warm_values(values)
    signatures = state.get("signatures")
    if signatures:
        cache.restore_signatures(rings, signatures)
    verdicts = state.get("solvability")
    if verdicts:
        cached_is_solvable.prime(verdicts)
