"""The unified protocol runtime: one kernel, pluggable executors.

Everything that *runs* a protocol lives here:

* :mod:`repro.runtime.kernel` — the synchronous round engine (rushing
  adversary, topology-checked channels, link faults, structured
  tracing, execution caches).  ``SyncNetwork`` in
  :mod:`repro.net.simulator` is a thin shim over it;
* :data:`Party` — the state-machine interface (init →
  ``on_round(ctx, inbox)`` → output → halt) every protocol and
  consensus primitive implements;
* :class:`RunPlan` — one fully-assembled instance, ready to execute;
* the executors — :class:`LockstepRuntime` (sequential reference),
  :class:`EventRuntime` (asyncio, optional jitter and transport
  hosting), :class:`BatchRuntime` (many instances through one round
  loop over a shared :class:`ExecutionCache`);
* :mod:`repro.runtime.trace` — :class:`TraceEvent` / ``TraceRecorder``
  structured round traces, exportable as JSONL via ``repro.io``.

All executors are semantics-preserving: the same plan yields a
byte-identical :class:`RunResult` under each of them.  Pick by need:
lockstep to debug, event to stress scheduling assumptions, batch for
sweep throughput (``docs/protocol_walkthrough.md`` has the full
"which runtime when" guide).
"""

from repro.runtime.api import RUNTIME_NAMES, Party, RunPlan, Runtime, runtime_for
from repro.runtime.batch import BatchRuntime
from repro.runtime.cache import (
    NO_CACHE,
    CachedSigner,
    ExecutionCache,
    NullExecutionCache,
    merge_cache_stats,
)
from repro.runtime.event import EventRuntime
from repro.runtime.kernel import (
    DEFAULT_MAX_ROUNDS,
    AdversaryWorld,
    RoundEngine,
    RunResult,
)
from repro.runtime.lockstep import LockstepRuntime
from repro.runtime.trace import TraceEvent, TraceRecorder, TraceSink, trace_to_jsonl

__all__ = [
    "Party",
    "RunPlan",
    "Runtime",
    "RUNTIME_NAMES",
    "runtime_for",
    "LockstepRuntime",
    "EventRuntime",
    "BatchRuntime",
    "RoundEngine",
    "RunResult",
    "AdversaryWorld",
    "DEFAULT_MAX_ROUNDS",
    "ExecutionCache",
    "NullExecutionCache",
    "NO_CACHE",
    "CachedSigner",
    "merge_cache_stats",
    "TraceEvent",
    "TraceRecorder",
    "TraceSink",
    "trace_to_jsonl",
]
