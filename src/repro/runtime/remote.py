"""Cross-host sweep execution: the ``hosts`` executor's worker plane.

The ``parallel`` executor shards a sweep across one machine's cores;
this module shards it across *worker endpoints* — subprocesses, SSH
targets, or :mod:`repro.serve` instances — fed from a work-stealing
queue, and reassembles records in spec order, byte-identical to the
``serial`` executor (gated by the ``executor_differential`` oracle).

Worker protocol (``repro worker``): newline-delimited JSON over the
worker's stdio, one reply line per request line.

* on startup the worker emits ``{"op": "ready", "version": <fp>}`` —
  the parent refuses a worker whose code fingerprint
  (:func:`repro.runtime.diskcache.cache_version`) differs from its own,
  because byte-identical records need identical producing code;
* ``{"op": "warm", "state": <base64 pickle>}`` primes the worker's
  persistent :class:`~repro.runtime.cache.ExecutionCache` from a warm
  state (see :func:`repro.runtime.diskcache.restore_warm_state`) and
  replies ``{"op": "warmed"}``;
* ``{"op": "run", "id": N, "specs": [<spec dicts>]}`` executes the
  chunk through the batched round loop and replies ``{"id": N,
  "records": [<record dicts>], "cache_stats": {...}}`` (or ``{"id": N,
  "error": "..."}``);
* EOF on stdin ends the worker.

Host endpoint strings (:func:`run_hosts`):

* ``"local"`` — spawn ``sys.executable -m repro worker`` here (the
  degenerate cross-host case; what CI's hosts-smoke and the
  differential tests exercise);
* ``"ssh:user@box"`` — ``ssh -o BatchMode=yes user@box python3 -m
  repro worker`` (the remote side needs ``repro`` importable for its
  login shell);
* ``"cmd:<shell words>"`` — an explicit worker command line, for
  wrapper scripts, containers, or tests;
* ``"http://host:port"`` — POST chunks to a running ``repro serve``
  instance's ``/v1/sweep`` and parse the NDJSON stream (no worker
  process at all; the service's own executor does the work).

The queue is work-stealing by construction: every host's pump thread
pulls the next unclaimed chunk, so a fast host simply takes more of
them — and a failed host's claimed chunk goes back on the queue for a
surviving host to steal.  The sweep fails (:class:`~repro.errors.
RemoteError`) only when some chunk never completes on any host:
records are required to be complete and byte-identical, so a partial
result is never returned.
"""

from __future__ import annotations

import base64
import json
import pickle
import queue
import shlex
import subprocess
import sys
import threading
from typing import IO, Mapping, Sequence

from repro.errors import RemoteError
from repro.runtime.cache import merge_cache_stats
from repro.runtime.diskcache import cache_version

__all__ = ["run_hosts", "worker_main", "DEFAULT_CHUNKS_PER_HOST"]

#: Chunks offered per host: enough granularity for stealing to matter,
#: few enough that per-chunk JSON overhead stays negligible.
DEFAULT_CHUNKS_PER_HOST = 4


def _emit(stream: IO[str], reply: Mapping) -> None:
    stream.write(json.dumps(reply, sort_keys=True) + "\n")
    stream.flush()


def worker_main(stdin: IO[str] | None = None, stdout: IO[str] | None = None) -> int:
    """The ``repro worker`` stdio loop (see the module docstring).

    One persistent :class:`~repro.runtime.cache.ExecutionCache` spans
    every chunk this worker executes, so cross-chunk-identical payload
    structures amortize exactly like they do inside the ``batch``
    executor.  The loop only writes protocol lines to stdout — anything
    else a run might print would corrupt the stream, so nothing here
    prints.
    """
    from repro.experiment.engine import _execute_batched, cached_keyring
    from repro.experiment.spec import ScenarioSpec
    from repro.runtime.cache import ExecutionCache
    from repro.runtime.diskcache import restore_warm_state

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    cache = ExecutionCache()
    _emit(stdout, {"op": "ready", "version": cache_version()})
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError:
            _emit(stdout, {"error": "request line is not JSON"})
            continue
        if not isinstance(request, dict):
            _emit(stdout, {"error": "request must be a JSON object"})
            continue
        op = request.get("op")
        if op == "warm":
            try:
                state = pickle.loads(base64.b64decode(request["state"]))
                rings = {
                    label: cached_keyring(label)
                    for label in state.get("signatures", {})
                    if isinstance(label, int)
                }
                restore_warm_state(cache, rings, state)
            except Exception as exc:  # a bad warm state is non-fatal
                _emit(stdout, {"op": "warmed", "error": f"{type(exc).__name__}: {exc}"})
            else:
                _emit(stdout, {"op": "warmed"})
            continue
        if op == "run":
            task_id = request.get("id")
            try:
                specs = [ScenarioSpec.from_dict(data) for data in request["specs"]]
                records, cache = _execute_batched(specs, cache=cache)
                reply = {
                    "id": task_id,
                    "records": [record.to_dict() for record in records],
                    "cache_stats": cache.stats(),
                }
            except Exception as exc:
                reply = {"id": task_id, "error": f"{type(exc).__name__}: {exc}"}
            _emit(stdout, reply)
            continue
        _emit(stdout, {"error": f"unknown op {op!r}"})
    return 0


# -- parent-side host handles --------------------------------------------------


class _SubprocessHost:
    """One worker process (local, ssh, or explicit command) and its pipes."""

    def __init__(self, host: str, command: Sequence[str]) -> None:
        self.host = host
        try:
            self.process = subprocess.Popen(
                list(command),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
            )
        except OSError as exc:
            raise RemoteError(f"cannot start worker for {host!r}: {exc}") from exc
        ready = self._read_reply()
        if ready.get("op") != "ready":
            raise RemoteError(f"worker {host!r} did not handshake: {ready!r}")
        version = ready.get("version")
        if version != cache_version():
            raise RemoteError(
                f"worker {host!r} runs different code "
                f"(fingerprint {version!r} != {cache_version()!r}); "
                "byte-identical records need identical code on every host"
            )

    def _read_reply(self) -> dict:
        assert self.process.stdout is not None
        line = self.process.stdout.readline()
        if not line:
            raise RemoteError(f"worker {self.host!r} closed its stream (died?)")
        try:
            reply = json.loads(line)
        except ValueError as exc:
            raise RemoteError(f"worker {self.host!r} spoke garbage: {line!r}") from exc
        if not isinstance(reply, dict):
            raise RemoteError(f"worker {self.host!r} spoke garbage: {line!r}")
        return reply

    def call(self, request: Mapping) -> dict:
        assert self.process.stdin is not None
        self.process.stdin.write(json.dumps(request, sort_keys=True) + "\n")
        self.process.stdin.flush()
        return self._read_reply()

    def warm(self, encoded_state: str) -> None:
        self.call({"op": "warm", "state": encoded_state})

    def run_chunk(self, task_id: int, spec_dicts: Sequence[dict]) -> tuple[list, dict]:
        reply = self.call({"op": "run", "id": task_id, "specs": list(spec_dicts)})
        if "error" in reply:
            raise RemoteError(f"worker {self.host!r} failed: {reply['error']}")
        return list(reply.get("records", ())), dict(reply.get("cache_stats", {}))

    def close(self) -> None:
        try:
            if self.process.stdin is not None:
                self.process.stdin.close()
            self.process.wait(timeout=10)
        except (OSError, subprocess.TimeoutExpired):
            self.process.kill()


class _HttpHost:
    """A ``repro serve`` endpoint driven through ``POST /v1/sweep``."""

    def __init__(self, host: str) -> None:
        self.host = host
        rest = host.split("://", 1)[1]
        rest = rest.split("/", 1)[0]
        name, _, port = rest.partition(":")
        if not name or not port.isdigit():
            raise RemoteError(
                f"http host must look like http://host:port, got {host!r}"
            )
        self._addr = (name, int(port))

    def warm(self, encoded_state: str) -> None:
        pass  # the service owns its session; nothing to prime remotely

    def run_chunk(self, task_id: int, spec_dicts: Sequence[dict]) -> tuple[list, dict]:
        from repro.serve.client import request as http_request

        try:
            response = http_request(
                self._addr[0],
                self._addr[1],
                "POST",
                "/v1/sweep",
                {"specs": list(spec_dicts)},
                timeout=600.0,
            )
        except OSError as exc:
            raise RemoteError(f"service {self.host!r} unreachable: {exc}") from exc
        if response.status != 200:
            raise RemoteError(
                f"service {self.host!r} rejected the chunk: HTTP {response.status}"
            )
        records = []
        for line in response.lines():
            row = json.loads(line)
            if isinstance(row, dict) and "scenario" in row:
                records.append(row)
        return records, {}

    def close(self) -> None:
        pass


def _open_host(host: str):
    """A host handle for one endpoint string (see the module docstring)."""
    if host == "local":
        return _SubprocessHost(host, [sys.executable, "-m", "repro", "worker"])
    if host.startswith("ssh:"):
        target = host[len("ssh:") :]
        if not target:
            raise RemoteError("ssh host needs a target: 'ssh:user@box'")
        return _SubprocessHost(
            host, ["ssh", "-o", "BatchMode=yes", target, "python3", "-m", "repro", "worker"]
        )
    if host.startswith("cmd:"):
        words = shlex.split(host[len("cmd:") :])
        if not words:
            raise RemoteError("cmd host needs a command line: 'cmd:python -m repro worker'")
        return _SubprocessHost(host, words)
    if host.startswith("http://") or host.startswith("https://"):
        return _HttpHost(host)
    raise RemoteError(
        f"unknown host endpoint {host!r}; expected 'local', 'ssh:<target>', "
        "'cmd:<command>', or 'http://host:port'"
    )


def _chunk_tasks(count: int, hosts: int, chunks_per_host: int) -> list[tuple[int, int]]:
    """Contiguous task bounds: ~``hosts * chunks_per_host`` near-equal slices."""
    from repro.experiment.engine import _chunk_bounds

    return _chunk_bounds(count, max(1, hosts * chunks_per_host))


def run_hosts(
    specs: Sequence,
    hosts: Sequence[str],
    *,
    warm_cache: bool = False,
    chunks_per_host: int = DEFAULT_CHUNKS_PER_HOST,
) -> tuple[tuple, dict]:
    """Execute ``specs`` across ``hosts``; returns ``(records, cache_stats)``.

    Records come back in spec order and byte-identical to the serial
    executor: chunk bounds are deterministic and contiguous, each chunk
    runs through the same batched round loop every other executor
    gates against, and reassembly is concatenation by chunk index.
    Which *host* ran a chunk is the only nondeterminism, and it cannot
    reach the records (they are pure functions of the specs).

    ``warm_cache`` ships a warm state (profile-ranking encode seed plus
    the parent's solvability verdicts) to every subprocess/SSH worker
    before the first chunk.  Failures anywhere fail the sweep with
    :class:`~repro.errors.RemoteError`.
    """
    from repro.experiment.engine import _warm_seed
    from repro.experiment.records import RunRecord
    from repro.core.solvability import cached_is_solvable

    specs = tuple(specs)
    if not hosts:
        raise RemoteError("the hosts executor needs at least one host endpoint")
    if not specs:
        return (), merge_cache_stats([])
    bounds = _chunk_tasks(len(specs), len(hosts), chunks_per_host)
    tasks = [
        [spec.to_dict() for spec in specs[start:stop]] for start, stop in bounds
    ]
    encoded_state = None
    if warm_cache:
        state = {
            "encode": _warm_seed(specs),
            "solvability": cached_is_solvable.export_entries(),
        }
        encoded_state = base64.b64encode(
            pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")

    feed: "queue.Queue[int]" = queue.Queue()
    for index in range(len(tasks)):
        feed.put(index)
    results: list[list | None] = [None] * len(tasks)
    host_stats: list[dict | None] = [None] * len(hosts)
    failures: list[BaseException] = []
    lock = threading.Lock()

    def pump(slot: int, host: str) -> None:
        handle = None
        try:
            handle = _open_host(host)
            if encoded_state is not None:
                handle.warm(encoded_state)
            while True:
                try:
                    index = feed.get_nowait()
                except queue.Empty:
                    break
                try:
                    records, stats = handle.run_chunk(index, tasks[index])
                except BaseException:
                    # Put the claimed chunk back: a surviving host's pump
                    # can still steal it (it only stops on a drained
                    # queue), so one dead worker does not doom the sweep.
                    feed.put(index)
                    raise
                results[index] = records
                if stats:
                    host_stats[slot] = stats
        except BaseException as exc:  # collected; fatal only if work is left
            with lock:
                failures.append(exc)
        finally:
            if handle is not None:
                handle.close()

    threads = [
        threading.Thread(target=pump, args=(slot, host), daemon=True)
        for slot, host in enumerate(hosts)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    missing = [index for index, rows in enumerate(results) if rows is None]
    if missing:
        primary = failures[0] if failures else None
        if isinstance(primary, RemoteError):
            raise primary
        raise RemoteError(
            f"hosts sweep incomplete: chunks {missing} never completed"
            + (f" (first failure: {primary})" if primary else "")
        ) from primary
    records = tuple(
        RunRecord.from_dict(row) for rows in results for row in rows  # type: ignore[union-attr]
    )
    # Per-host cache stats are cumulative (one persistent cache per
    # worker), so the last reply per host is that host's total.
    return records, merge_cache_stats([stats for stats in host_stats if stats])
