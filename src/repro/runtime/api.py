"""The runtime API: plans, the executor abstraction, and the registry.

The unit of work is a :class:`RunPlan` — everything the kernel needs to
execute one protocol instance, reified as a value so it can be built in
one place (:func:`repro.core.runner.prepare_bsm`) and executed by any
:class:`Runtime`:

* :class:`~repro.runtime.lockstep.LockstepRuntime` — the sequential
  reference executor (the historical ``SyncNetwork`` semantics);
* :class:`~repro.runtime.event.EventRuntime` — asyncio, one task per
  party per round, with optional scheduling jitter and optional
  transport hosting;
* :class:`~repro.runtime.batch.BatchRuntime` — many independent
  instances interleaved through one round loop over a shared
  :class:`~repro.runtime.cache.ExecutionCache`.

All three produce byte-identical :class:`~repro.runtime.kernel.RunResult`
values for the same plan; they differ only in scheduling and
amortization.

The protocol-facing half of the contract is :data:`Party` — the
state-machine interface (init → ``on_round(ctx, inbox)`` → output →
halt) that every protocol in :mod:`repro.core` and every consensus
primitive in :mod:`repro.consensus` implements.  It is the same ABC as
:class:`repro.net.process.Process`; the alias marks the runtime layer
as its front door.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.crypto.signatures import KeyRing
from repro.errors import SimulationError
from repro.ids import PartyId
from repro.net.process import Process
from repro.net.topology import Topology
from repro.runtime.kernel import DEFAULT_MAX_ROUNDS, RoundEngine, RunResult
from repro.runtime.trace import TraceSink

__all__ = ["Party", "RunPlan", "Runtime", "RUNTIME_NAMES", "runtime_for"]

#: The protocol state-machine interface every party implements
#: (alias of :class:`repro.net.process.Process`; see the module docs).
Party = Process


@dataclass
class RunPlan:
    """One executable protocol instance, fully assembled.

    A plan carries live objects (processes, adversary, keyring), not
    serializable specs — it is the last stop before execution.  The
    declarative layer (:mod:`repro.experiment`) compiles a
    ``ScenarioSpec`` down to a plan; direct users can build one by hand
    for anything the spec language cannot express.
    """

    topology: Topology
    processes: Mapping[PartyId, Process]
    adversary: object | None = None
    keyring: KeyRing | None = None
    structure: object | None = None
    max_rounds: int = DEFAULT_MAX_ROUNDS
    record_trace: bool = False
    #: ``drop_rule(src, dst, sent_round) -> bool`` link faults
    #: (see :mod:`repro.net.faults`); ``None`` = lossless channels.
    drop_rule: Callable[[PartyId, PartyId, int], bool] | None = None
    #: Structured trace sink (see :mod:`repro.runtime.trace`).
    trace_sink: TraceSink | None = None
    #: Label stamped on this run's trace events.
    label: str = ""
    extra: dict = field(default_factory=dict)


class Runtime(ABC):
    """An execution strategy: how plans become results.

    Implementations must be *semantics-preserving*: for any plan, every
    runtime returns the same :class:`RunResult` (the cross-runtime
    equivalence suite enforces this byte-for-byte).  They are free to
    differ in scheduling, amortization, and wall-clock.
    """

    #: Registry name (``"lockstep"`` / ``"event"`` / ``"batch"``).
    name: str = ""

    @abstractmethod
    def run(self, plan: RunPlan) -> RunResult:
        """Execute one plan to completion."""

    def run_many(self, plans: Sequence[RunPlan]) -> tuple[RunResult, ...]:
        """Execute several independent plans; results in plan order.

        The default runs them one after another; :class:`BatchRuntime`
        overrides this with the interleaved shared-cache loop.
        """
        return tuple(self.run(plan) for plan in plans)

    def _engine(self, plan: RunPlan, cache=None) -> RoundEngine:
        """The kernel engine for one plan (shared by all runtimes)."""
        return RoundEngine(
            plan.topology,
            plan.processes,
            adversary=plan.adversary,
            keyring=plan.keyring,
            structure=plan.structure,
            max_rounds=plan.max_rounds,
            record_trace=plan.record_trace,
            cache=cache,
            drop_rule=plan.drop_rule,
            trace_sink=plan.trace_sink,
            label=plan.label,
        )


#: The runtime registry, in documentation order.
RUNTIME_NAMES: tuple[str, ...] = ("lockstep", "event", "batch")


def runtime_for(name: str, **options) -> Runtime:
    """Instantiate a runtime by registry name.

    Options pass through to the constructor (``jitter_seed`` for
    ``event``, ``cache`` for ``batch``, ...).
    """
    from repro.runtime.batch import BatchRuntime
    from repro.runtime.event import EventRuntime
    from repro.runtime.lockstep import LockstepRuntime

    constructors = {
        "lockstep": LockstepRuntime,
        "event": EventRuntime,
        "batch": BatchRuntime,
    }
    try:
        constructor = constructors[name]
    except KeyError as exc:
        raise SimulationError(
            f"unknown runtime {name!r}; expected one of {RUNTIME_NAMES}"
        ) from exc
    return constructor(**options)
