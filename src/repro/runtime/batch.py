"""The batched executor: many instances, one round loop, shared caches.

Large sweeps run thousands of *independent* protocol instances whose
work overlaps heavily: a characterization grid reuses one preference
seed across every budget point, so the same payloads are canonically
encoded, signed, and verified over and over — once per instance, per
recipient, per round.  :class:`BatchRuntime` exploits that redundancy:

* all instances advance through **one interleaved round loop** — round
  ``r`` of instance ``i+1`` executes right after round ``r`` of
  instance ``i``, so identical payloads from sibling instances hit the
  caches while they are hot;
* every engine shares **one** :class:`~repro.runtime.cache.ExecutionCache`
  for byte accounting, signing, and verification, plus any pure values
  the caller memoizes through it (the experiment engine routes
  preference-profile materialization here).

Because every cached computation is pure, results are byte-identical to
the lockstep reference — the equivalence suite proves it — while sweep
throughput roughly doubles on one worker (see ``bench_table1`` quick
mode).  The batch dimension composes with the process pool: each worker
can batch its own shard.
"""

from __future__ import annotations

import gc
from typing import Sequence

from repro.runtime.api import RunPlan, Runtime
from repro.runtime.cache import ExecutionCache
from repro.runtime.kernel import RunResult

__all__ = ["BatchRuntime"]


class BatchRuntime(Runtime):
    """Interleaved execution of many plans over a shared cache.

    One instance of this class scopes one cache: create a fresh runtime
    per sweep (the experiment engine does) so memory is reclaimed and
    batches stay independent.
    """

    name = "batch"

    def __init__(self, cache: ExecutionCache | None = None) -> None:
        self.cache = cache if cache is not None else ExecutionCache()

    def run(self, plan: RunPlan) -> RunResult:
        """A batch of one — same semantics, same shared cache."""
        return self.run_many([plan])[0]

    def run_many(self, plans: Sequence[RunPlan]) -> tuple[RunResult, ...]:
        """Drive all plans through one round loop; results in plan order."""
        engines = [self._engine(plan, cache=self.cache) for plan in plans]
        done = [False] * len(engines)
        live = [i for i, engine in enumerate(engines) if engine._round < engine.max_rounds]
        # The shared cache intentionally pins a large object graph for
        # the batch's lifetime; with the cyclic collector enabled, the
        # allocation churn of the round loop triggers full collections
        # that rescan it over and over (measured ~2x wall-clock).  The
        # loop allocates almost no cycles — plain tuples and lists are
        # reclaimed by refcounting — so pause collection for its
        # duration; the engines' few cycles (engine <-> adversary
        # world) go to the next natural collection, which is cheap once
        # the batch's references are dropped.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while live:
                still_live: list[int] = []
                for i in live:
                    engine = engines[i]
                    done[i] = engine.step_round()
                    if not done[i] and engine._round < engine.max_rounds:
                        still_live.append(i)
                live = still_live
        finally:
            if gc_was_enabled:
                gc.enable()
        return tuple(engine._result(done[i]) for i, engine in enumerate(engines))
