"""The event executor: asyncio scheduling over the same kernel.

Built on :mod:`repro.net.async_runtime`: within each round every honest
party executes as its own asyncio task, with an optional seeded jitter
shuffling the in-round interleaving.  Outboxes drain in canonical party
order after the round's tasks complete, so the outcome is byte-identical
to the lockstep reference — a synchronous protocol may not depend on
intra-round scheduling, and running it here *proves* it doesn't.

The executor can additionally host every party over a pluggable
:mod:`repro.net.transports` link layer (``transport="direct"`` wraps
each process in a :class:`~repro.net.transports.TransportProcess` over a
:class:`~repro.net.transports.DirectLink`).  Transport hosting changes
the wire format (payloads travel link-framed) and therefore the
message-size accounting, and unrecognized raw traffic is dropped at the
link — so it is off by default and excluded from the equivalence
contract; it exists for experiments that study protocols *behind* a
transport stack.  Kernel-level link faults (``plan.drop_rule``) work in
every mode and stay equivalence-preserving.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.ids import PartyId
from repro.net.process import Process
from repro.net.transports import DirectLink, TransportProcess
from repro.runtime.api import RunPlan, Runtime
from repro.runtime.kernel import RunResult

__all__ = ["EventRuntime"]


class EventRuntime(Runtime):
    """Asyncio execution: one task per party per round.

    ``jitter_seed`` adds a seeded per-task delay emulating real
    in-round scheduling noise (``None`` = no jitter, fastest).
    ``transport`` is ``None`` (kernel delivery, the default) or
    ``"direct"`` (host every party over a :class:`DirectLink`).
    """

    name = "event"

    def __init__(self, jitter_seed: int | None = None, transport: str | None = None) -> None:
        if transport not in (None, "direct"):
            raise SimulationError(
                f"unknown transport {transport!r}; expected None or 'direct'"
            )
        self.jitter_seed = jitter_seed
        self.transport = transport

    def _hosted_processes(self, plan: RunPlan) -> dict[PartyId, Process]:
        if self.transport is None:
            return dict(plan.processes)
        return {
            # Each party's link group is its closed neighborhood, so the
            # virtual network mirrors the physical topology exactly.
            party: TransportProcess(
                DirectLink(party, (party, *plan.topology.neighbors(party))), process
            )
            for party, process in plan.processes.items()
        }

    def run(self, plan: RunPlan) -> RunResult:
        from repro.net.async_runtime import AsyncNetwork

        network = AsyncNetwork(
            plan.topology,
            self._hosted_processes(plan),
            adversary=plan.adversary,
            keyring=plan.keyring,
            structure=plan.structure,
            max_rounds=plan.max_rounds,
            record_trace=plan.record_trace,
            drop_rule=plan.drop_rule,
            trace_sink=plan.trace_sink,
            label=plan.label,
            jitter_seed=self.jitter_seed,
        )
        return network.run()
