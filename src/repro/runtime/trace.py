"""First-class structured tracing for protocol runs.

Every runtime (lockstep, event, batched) executes the same kernel, and
the kernel emits one :class:`TraceEvent` per observable transition:
messages entering the channel (``send``), messages the link faults eat
(``drop``), parties declaring outputs (``output``), halting (``halt``),
and adaptive corruptions (``corrupt``).  A *sink* is any callable
accepting one event; :class:`TraceRecorder` is the standard in-memory
sink, and :func:`repro.io.dump` (the ``kernel-trace`` format) writes
recorded events as JSONL — one JSON object per line, streamable and
greppable.

Tracing is strictly opt-in: when no sink is attached the kernel skips
event construction entirely, so traced and untraced runs produce
byte-identical results and untraced runs pay nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = ["TraceEvent", "TraceSink", "TraceRecorder", "trace_to_jsonl"]


@dataclass(frozen=True)
class TraceEvent:
    """One kernel transition, flattened to plain strings and ints.

    ``kind`` is one of ``send`` / ``drop`` / ``output`` / ``halt`` /
    ``corrupt``.  ``party`` is the acting party (the sender for
    ``send``/``drop``); ``peer`` is the recipient for ``send``/``drop``
    and empty otherwise; ``payload`` carries the message payload (or
    declared output value) as its ``repr``.
    """

    run: str
    round: int
    kind: str
    party: str = ""
    peer: str = ""
    payload: str = ""

    def to_dict(self) -> dict:
        data: dict = {"run": self.run, "round": self.round, "kind": self.kind}
        if self.party:
            data["party"] = self.party
        if self.peer:
            data["peer"] = self.peer
        if self.payload:
            data["payload"] = self.payload
        return data


#: A trace sink: any callable consuming one event.
TraceSink = Callable[[TraceEvent], None]


class TraceRecorder:
    """The standard sink: collects events in arrival order."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def __call__(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def for_run(self, run: str) -> list[TraceEvent]:
        """The events of one labelled run, in order."""
        return [event for event in self.events if event.run == run]

    def to_jsonl(self) -> str:
        """The recorded events as JSONL text."""
        return trace_to_jsonl(self.events)


def trace_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize events as JSONL (one canonical JSON object per line)."""
    lines = [json.dumps(event.to_dict(), sort_keys=True) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")
