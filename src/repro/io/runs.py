"""JSON converters for run results and bSM reports.

Turns :class:`~repro.runtime.RunResult` and
:class:`~repro.core.runner.BSMReport` objects into plain-JSON
dictionaries (and back, for results), so experiment pipelines can
archive runs, diff them across code versions, or plot them elsewhere.

PartyIds serialize as their string form (``"L3"``), payloads as
``repr`` strings (archives are for inspection, not replay).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.runner import BSMReport
from repro.errors import ReproError
from repro.ids import PartyId, parse_party
from repro.runtime import RunResult

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "report_to_dict",
]


def _party_to_str(party: PartyId) -> str:
    return str(party)


def _value_to_jsonable(value: object) -> object:
    if value is None:
        return None
    if isinstance(value, PartyId):
        return {"party": str(value)}
    return {"repr": repr(value)}


def _value_from_jsonable(value: object) -> object:
    if value is None:
        return None
    if isinstance(value, Mapping) and "party" in value:
        return parse_party(value["party"])
    if isinstance(value, Mapping) and "repr" in value:
        return value["repr"]
    raise ReproError(f"unrecognized serialized value: {value!r}")


def result_to_dict(result: RunResult, *, include_trace: bool = False) -> dict:
    """A JSON-ready dictionary for a run result."""
    data = {
        "outputs": {
            _party_to_str(party): _value_to_jsonable(value)
            for party, value in sorted(result.outputs.items())
        },
        "halted": sorted(_party_to_str(p) for p in result.halted),
        "corrupted": sorted(_party_to_str(p) for p in result.corrupted),
        "rounds": result.rounds,
        "terminated": result.terminated,
        "message_count": result.message_count,
        "byte_count": result.byte_count,
    }
    if result.dropped:
        # Only fault-injected runs carry the key, so lossless archives
        # stay byte-identical across code versions.
        data["dropped"] = result.dropped
    if include_trace:
        data["trace"] = [
            {
                "src": _party_to_str(envelope.src),
                "dst": _party_to_str(envelope.dst),
                "round": envelope.sent_round,
                "payload": repr(envelope.payload),
            }
            for envelope in result.trace
        ]
    return data


def result_from_dict(data: Mapping) -> RunResult:
    """Rebuild a (trace-less) result from its dictionary form.

    Outputs that were PartyIds round-trip exactly; arbitrary payload
    outputs come back as their ``repr`` strings.
    """
    return RunResult(
        outputs={
            parse_party(party): _value_from_jsonable(value)
            for party, value in data["outputs"].items()
        },
        halted=frozenset(parse_party(p) for p in data["halted"]),
        corrupted=frozenset(parse_party(p) for p in data["corrupted"]),
        rounds=int(data["rounds"]),
        terminated=bool(data["terminated"]),
        message_count=int(data["message_count"]),
        byte_count=int(data["byte_count"]),
        dropped=int(data.get("dropped", 0)),
    )


def report_to_dict(report: BSMReport, *, include_trace: bool = False) -> dict:
    """A JSON-ready dictionary for a full bSM report."""
    return {
        "setting": {
            "topology": report.setting.topology_name,
            "authenticated": report.setting.authenticated,
            "k": report.setting.k,
            "tL": report.setting.tL,
            "tR": report.setting.tR,
        },
        "verdict": {
            "solvable": report.verdict.solvable,
            "theorem": report.verdict.theorem,
            "recipe": report.verdict.recipe,
        },
        "properties": {
            "termination": report.report.termination,
            "symmetry": report.report.symmetry,
            "stability": report.report.stability,
            "non_competition": report.report.non_competition,
            "violations": list(report.report.violations),
        },
        "honest": sorted(str(p) for p in report.honest),
        "result": result_to_dict(report.result, include_trace=include_trace),
    }
