"""A schema-stamped format registry behind one ``dump``/``load`` pair.

Every artifact ``repro`` writes to disk — record sets (JSON and
NDJSON), sweeps, bench results and baselines, conformance repro files
and reports, lattice reports, kernel traces, bSM reports — registers a
:class:`Format` here.  :func:`dump` dispatches on the *object* (its
type, or for plain mappings its stamp keys); :func:`load` dispatches on
the *file content* (the schema stamp each format already writes), so
callers no longer pick one of nine ``dump_*``/``load_*`` pairs by hand:

    from repro import io
    io.dump(records, "records.json")
    records = io.load("records.json")     # sniffs the stamp

Pass ``format="<name>"`` to pin a format explicitly — needed only when
one object serializes under several formats (a ``RunRecordSet`` dumps
as ``run-records`` JSON by default; pin ``run-records-ndjson`` for the
streaming layout).

Cross-subsystem imports stay inside the format callables (the bench and
conform subsystems import :mod:`repro.io` themselves), mirroring the
lazy-import style of the legacy module this registry replaced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.errors import ReproError

__all__ = [
    "Format",
    "FORMATS",
    "register_format",
    "dump",
    "load",
    "sniff_format",
]


@dataclass(frozen=True)
class _Probe:
    """What :func:`load` knows about a file before picking a format.

    ``whole`` is the parsed JSON value when the entire file is one JSON
    document (None otherwise); ``first`` is the parsed first line when
    the file is line-oriented JSON (NDJSON/JSONL; None otherwise).
    """

    whole: object = None
    first: object = None


@dataclass(frozen=True)
class Format:
    """One registered on-disk format.

    ``stamp`` documents how files of this format identify themselves
    (the key or schema string :func:`load` sniffs for).  ``matches``
    answers "does this in-memory object dump as me?"; ``sniff`` answers
    "is this file content mine?".  Registration order is dispatch
    order, so more specific stamps register before generic ones.
    """

    name: str
    stamp: str
    matches: Callable[[object], bool]
    sniff: Callable[[_Probe], bool]
    write: Callable[[object, object], None]
    read: Callable[[object], object]


#: Registered formats in dispatch order.
FORMATS: dict[str, Format] = {}


def register_format(fmt: Format) -> Format:
    """Add a format to the registry (duplicate names are an error)."""
    if fmt.name in FORMATS:
        raise ReproError(f"io format {fmt.name!r} is already registered")
    FORMATS[fmt.name] = fmt
    return fmt


def dump(obj: object, path, *, format: Optional[str] = None) -> None:
    """Write ``obj`` to ``path`` in its registered format.

    Dispatches on the object (type or stamp keys); pass ``format=`` to
    pin one by name.  Raises :class:`~repro.errors.ReproError` when no
    registered format claims the object.
    """
    fmt = _resolve(format)
    if fmt is None:
        for candidate in FORMATS.values():
            if candidate.matches(obj):
                fmt = candidate
                break
    if fmt is None:
        raise ReproError(
            f"no registered io format accepts {type(obj).__name__!r}; "
            f"known formats: {sorted(FORMATS)}"
        )
    fmt.write(obj, path)


def load(path, *, format: Optional[str] = None):
    """Read ``path`` back as whatever format its schema stamp declares.

    The inverse of :func:`dump`: sniffs the file content against every
    registered format's stamp and delegates to the matching reader.
    Pass ``format=`` to pin one by name — the pinned reader's own
    validation still applies (readers with schema stamps raise their
    subsystem error), and a reader tripping over the wrong file's shape
    surfaces as :class:`~repro.errors.ReproError` instead of a raw
    ``KeyError``.
    """
    fmt = _resolve(format)
    if fmt is None:
        return sniff_format(path).read(path)
    try:
        return fmt.read(path)
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ReproError(
            f"{path} does not parse as the {fmt.name!r} format "
            f"({fmt.stamp}): {exc!r}"
        ) from exc


def sniff_format(path) -> Format:
    """The registered format whose stamp matches the file at ``path``."""
    probe = _probe(path)
    for fmt in FORMATS.values():
        if fmt.sniff(probe):
            return fmt
    raise ReproError(
        f"no registered io format recognizes {path}; known formats: {sorted(FORMATS)}"
    )


def _resolve(name: Optional[str]) -> Optional[Format]:
    if name is None:
        return None
    try:
        return FORMATS[name]
    except KeyError as exc:
        raise ReproError(
            f"unknown io format {name!r}; known formats: {sorted(FORMATS)}"
        ) from exc


def _probe(path) -> _Probe:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    whole = first = None
    try:
        whole = json.loads(text)
    except ValueError:
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                first = json.loads(line)
            except ValueError:
                first = None
            break
    return _Probe(whole=whole, first=first)


def _is_map_with(probe_value: object, *keys: str) -> bool:
    return isinstance(probe_value, Mapping) and all(k in probe_value for k in keys)


# -- the built-in formats ------------------------------------------------------
#
# Registration order is sniff order: exact schema strings first, then
# kind stamps, then structural keys.  Writers live here (moved from the
# legacy flat module); the old dump_*/load_* names in the package root
# are thin deprecation shims over this table.


def _write_text(path, text: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def _read_text(path) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _is_conform_repro(obj: object) -> bool:
    from repro.conform.harness import ReproFile

    return isinstance(obj, ReproFile)


def _read_conform_repro(path):
    from repro.conform.harness import ReproFile

    return ReproFile.from_json(_read_text(path))


register_format(
    Format(
        name="conform-repro",
        stamp='schema == "repro.conform.repro/1"',
        matches=_is_conform_repro,
        sniff=lambda p: _is_map_with(p.whole, "schema")
        and str(p.whole["schema"]).startswith("repro.conform.repro/"),
        write=lambda obj, path: _write_text(path, obj.to_json()),
        read=_read_conform_repro,
    )
)


def _is_conform_report(obj: object) -> bool:
    from repro.conform.harness import ConformanceReport

    return isinstance(obj, ConformanceReport)


def _read_conform_report(path):
    from repro.conform.harness import ConformanceReport

    return ConformanceReport.from_json(_read_text(path))


register_format(
    Format(
        name="conform-report",
        stamp='schema == "repro.conform.report/1"',
        matches=_is_conform_report,
        sniff=lambda p: _is_map_with(p.whole, "schema")
        and str(p.whole["schema"]).startswith("repro.conform.report/"),
        write=lambda obj, path: _write_text(path, obj.to_json()),
        read=_read_conform_report,
    )
)


def _is_bench_baseline(obj: object) -> bool:
    return _is_map_with(obj, "cases") and obj.get("kind", "bench-baseline") == (
        "bench-baseline"
    )


def _write_bench_baseline(obj, path) -> None:
    from repro.bench.compare import baseline_to_json

    _write_text(path, baseline_to_json(obj))


def _read_bench_baseline(path) -> dict:
    from repro.bench.compare import baseline_from_json

    return baseline_from_json(_read_text(path))


register_format(
    Format(
        name="bench-baseline",
        stamp='kind == "bench-baseline"',
        matches=_is_bench_baseline,
        sniff=lambda p: _is_map_with(p.whole, "kind")
        and p.whole["kind"] == "bench-baseline",
        write=_write_bench_baseline,
        read=_read_bench_baseline,
    )
)


def _is_bench_result(obj: object) -> bool:
    from repro.bench.result import BenchResult

    return isinstance(obj, BenchResult)


def _read_bench_result(path):
    from repro.bench.result import BenchResult

    return BenchResult.from_json(_read_text(path))


register_format(
    Format(
        name="bench-result",
        stamp='integer "schema" plus "case"/"phases" keys',
        matches=_is_bench_result,
        sniff=lambda p: _is_map_with(p.whole, "schema", "case", "phases"),
        write=lambda obj, path: _write_text(path, obj.to_json()),
        read=_read_bench_result,
    )
)


def _is_record_set(obj: object) -> bool:
    from repro.experiment.records import RunRecordSet

    return isinstance(obj, RunRecordSet)


def _read_records(path):
    from repro.experiment.records import RunRecordSet

    return RunRecordSet.from_json(_read_text(path))


register_format(
    Format(
        name="run-records",
        stamp='top-level "records" list',
        matches=_is_record_set,
        sniff=lambda p: _is_map_with(p.whole, "records"),
        write=lambda obj, path: _write_text(path, obj.to_json()),
        read=_read_records,
    )
)


def _write_records_ndjson(obj, path) -> None:
    from repro.io.ndjson import dump_records_ndjson

    dump_records_ndjson(obj, path)


def _read_records_ndjson(path):
    from repro.experiment.records import RunRecordSet
    from repro.io.ndjson import iter_records_ndjson

    return RunRecordSet.from_iter(iter_records_ndjson(path))


register_format(
    Format(
        name="run-records-ndjson",
        stamp='header line kind == "run-records"',
        # Never auto-selected on dump (a RunRecordSet dumps as
        # "run-records" JSON); pin format="run-records-ndjson".
        matches=lambda obj: False,
        sniff=lambda p: _is_map_with(p.first, "kind")
        and p.first["kind"] == "run-records",
        write=_write_records_ndjson,
        read=_read_records_ndjson,
    )
)


def _is_sweep(obj: object) -> bool:
    from repro.experiment.spec import Sweep

    return isinstance(obj, Sweep)


def _read_sweep(path):
    from repro.experiment.spec import Sweep

    return Sweep.from_json(_read_text(path))


register_format(
    Format(
        name="sweep",
        stamp='top-level "specs" list',
        matches=_is_sweep,
        sniff=lambda p: _is_map_with(p.whole, "specs"),
        write=lambda obj, path: _write_text(path, obj.to_json()),
        read=_read_sweep,
    )
)


def _read_lattice_report(path) -> dict:
    data = json.loads(_read_text(path))
    if not isinstance(data, Mapping) or "rotations" not in data:
        raise ReproError(
            "not a lattice report: expected a JSON object with a 'rotations' key"
        )
    return dict(data)


register_format(
    Format(
        name="lattice-report",
        stamp='top-level "rotations" key',
        matches=lambda obj: _is_map_with(obj, "rotations"),
        sniff=lambda p: _is_map_with(p.whole, "rotations"),
        write=lambda obj, path: _write_text(
            path, json.dumps(obj, indent=2, sort_keys=True) + "\n"
        ),
        read=_read_lattice_report,
    )
)


def _is_bsm_report(obj: object) -> bool:
    from repro.core.runner import BSMReport

    return isinstance(obj, BSMReport)


def _write_bsm_report(obj, path) -> None:
    from repro.io.runs import report_to_dict

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report_to_dict(obj), handle, indent=2)


def _read_bsm_report(path):
    from repro.io.runs import result_from_dict

    data = json.loads(_read_text(path))
    return result_from_dict(data["result"] if "result" in data else data)


register_format(
    Format(
        name="bsm-report",
        stamp='"setting"/"verdict"/"result" keys (reads back the RunResult)',
        matches=_is_bsm_report,
        sniff=lambda p: _is_map_with(p.whole, "setting", "verdict", "result")
        or _is_map_with(p.whole, "outputs", "halted", "rounds"),
        write=_write_bsm_report,
        read=_read_bsm_report,
    )
)


def _is_trace(obj: object) -> bool:
    from repro.runtime.trace import TraceEvent, TraceRecorder

    if isinstance(obj, TraceRecorder):
        return True
    if isinstance(obj, (list, tuple)) and obj:
        return isinstance(obj[0], TraceEvent)
    return False


def _write_trace(obj, path) -> None:
    from repro.runtime.trace import trace_to_jsonl

    _write_text(path, trace_to_jsonl(obj))


def _read_trace(path) -> list:
    from repro.runtime.trace import TraceEvent

    events: list = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            events.append(
                TraceEvent(
                    run=data.get("run", ""),
                    round=int(data["round"]),
                    kind=data["kind"],
                    party=data.get("party", ""),
                    peer=data.get("peer", ""),
                    payload=data.get("payload", ""),
                )
            )
    return events


register_format(
    Format(
        name="kernel-trace",
        stamp='JSONL lines with "round"/"kind" keys',
        matches=_is_trace,
        sniff=lambda p: _is_map_with(p.first, "round", "kind"),
        write=_write_trace,
        read=_read_trace,
    )
)
