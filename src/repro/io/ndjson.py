"""Streaming NDJSON record archives.

One schema-stamped header line, then one
:class:`~repro.experiment.records.RunRecord` per line.  This module is
the byte-level contract shared by :func:`dump_records_ndjson`, the
:class:`repro.experiment.sinks.NdjsonSink` spill path, and the
``repro.serve`` ``/v1/sweep`` stream — all three emit lines through
:func:`record_ndjson_line`, so a sweep streamed over a socket is
byte-identical to the same sweep dumped (or spilled) to a file.

Append mode is crash-tolerant: :func:`prepare_ndjson_append` validates
the existing header (kind and schema must match this build) and repairs
a truncated trailing line — the signature a killed writer leaves behind
— by truncating back to the last complete line before new records go in.
"""

from __future__ import annotations

import json
import os
from typing import Iterator, Mapping

from repro.errors import ReproError

__all__ = [
    "RECORDS_NDJSON_SCHEMA",
    "record_ndjson_line",
    "records_ndjson_header",
    "parse_records_ndjson_header",
    "prepare_ndjson_append",
    "dump_records_ndjson",
    "iter_records_ndjson",
]

#: Bump when the NDJSON record layout changes incompatibly.  The header
#: line every stream starts with carries this, so readers reject files
#: (and network streams) written by an incompatible layout instead of
#: misreading them.  Additive record columns do *not* bump the schema:
#: ``RunRecord.from_dict`` ignores unknown keys, so old readers skip new
#: columns and new readers default missing ones.
RECORDS_NDJSON_SCHEMA = 1


def record_ndjson_line(record) -> str:
    """One :class:`~repro.experiment.records.RunRecord` as one NDJSON line.

    Canonical (sorted keys, compact, trailing newline).  This is the
    single line encoder shared by :func:`dump_records_ndjson`, the
    record sinks, and the ``repro.serve`` streaming path.
    """
    return json.dumps(record.to_dict(), sort_keys=True) + "\n"


def records_ndjson_header() -> str:
    """The schema-stamped header line every NDJSON record stream starts with."""
    return (
        json.dumps(
            {"kind": "run-records", "schema": RECORDS_NDJSON_SCHEMA}, sort_keys=True
        )
        + "\n"
    )


def parse_records_ndjson_header(line: str) -> Mapping:
    """Validate one header line; returns the parsed header or raises.

    Shared by the reader (:func:`iter_records_ndjson`) and the append
    path (:func:`prepare_ndjson_append`), so a file one side accepts the
    other accepts too.
    """
    try:
        header = json.loads(line) if line.strip() else None
    except ValueError as exc:
        raise ReproError(f"NDJSON record header is not valid JSON: {exc}") from exc
    if not isinstance(header, Mapping) or header.get("kind") != "run-records":
        raise ReproError(
            "not an NDJSON record file: expected a kind='run-records' header line"
        )
    schema = header.get("schema")
    if schema != RECORDS_NDJSON_SCHEMA:
        raise ReproError(
            f"NDJSON record schema {schema!r} is not supported "
            f"(this build reads schema {RECORDS_NDJSON_SCHEMA})"
        )
    return header


def _truncate_partial_tail(path) -> int:
    """Drop a trailing line with no final newline; returns bytes removed.

    A writer killed mid-record leaves a partial last line.  Truncating
    back to the byte after the last ``\\n`` restores the file to a valid
    prefix (every NDJSON prefix ending on a line boundary is valid), so
    an appender can resume where the last complete record left off.
    """
    with open(path, "rb+") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return 0
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return 0
        # Scan backwards in chunks for the last newline.
        position = size
        last_newline = -1
        while position > 0 and last_newline < 0:
            start = max(0, position - 4096)
            handle.seek(start)
            data = handle.read(position - start)
            index = data.rfind(b"\n")
            if index >= 0:
                last_newline = start + index
            position = start
        keep = last_newline + 1
        handle.truncate(keep)
        return size - keep


def prepare_ndjson_append(path) -> bool:
    """Make ``path`` safe to append records to; returns True when fresh.

    Fresh (missing or empty file — the caller must write the header
    first) or resumable (existing file: the header is validated against
    this build's kind/schema, and a truncated trailing line from an
    interrupted writer is repaired by truncation).  Raises
    :class:`~repro.errors.ReproError` when the existing file is not an
    NDJSON record archive this build can extend.
    """
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return True
    _truncate_partial_tail(path)
    if os.path.getsize(path) == 0:
        # The partial tail was the (unfinished) header itself.
        return True
    with open(path, "r", encoding="utf-8") as handle:
        parse_records_ndjson_header(handle.readline())
    return False


def dump_records_ndjson(records, path, *, append: bool = False) -> None:
    """Write records as NDJSON: a schema header line, then one record per line.

    Unlike ``dump_records`` this format appends and streams: pass
    ``append=True`` to add records to an existing file without touching
    what is already there.  Appending validates the existing header
    (kind/schema mismatch raises instead of corrupting the archive) and
    repairs a truncated trailing line before resuming — see
    :func:`prepare_ndjson_append`.  ``records`` is any iterable of
    :class:`~repro.experiment.records.RunRecord` — a
    :class:`~repro.experiment.records.RunRecordSet` works directly, and
    so does a generator, which never materializes the whole set.
    """
    fresh = prepare_ndjson_append(path) if append else True
    mode = "a" if append else "w"
    with open(path, mode, encoding="utf-8") as handle:
        if fresh:
            handle.write(records_ndjson_header())
        for record in records:
            handle.write(record_ndjson_line(record))


def iter_records_ndjson(path, *, tolerate_truncation: bool = False) -> Iterator:
    """Stream records back from a file written by :func:`dump_records_ndjson`.

    A generator of :class:`~repro.experiment.records.RunRecord` — memory
    stays flat no matter how many lines the file holds.  Rebuild a set
    with ``RunRecordSet.from_iter(iter_records_ndjson(path))``.  The
    header line is validated before any record is yielded.

    Reading a file another process is still appending to is safe: lines
    are consumed lazily, so records appended before the reader reaches
    end-of-file are yielded too.  A truncated trailing line (a writer
    caught mid-record) raises unless ``tolerate_truncation=True``, which
    stops cleanly after the last complete record instead.
    """
    from repro.experiment.records import RunRecord

    with open(path, "r", encoding="utf-8") as handle:
        parse_records_ndjson_header(handle.readline())
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as exc:
                if not raw.endswith("\n"):
                    if tolerate_truncation:
                        return
                    raise ReproError(
                        f"NDJSON record file ends mid-line (truncated write): {path}; "
                        "pass tolerate_truncation=True to stop at the last complete "
                        "record, or repair with prepare_ndjson_append()"
                    ) from exc
                raise ReproError(f"corrupt NDJSON record line: {exc}") from exc
            yield RunRecord.from_dict(data)
