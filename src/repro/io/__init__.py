"""Exporting runs (and every other repro artifact) for offline analysis.

The package has one front door now: :func:`dump` writes any registered
artifact — record sets, sweeps, bench results and baselines, conform
repro files and reports, lattice reports, kernel traces, bSM reports —
and :func:`load` reads any of them back by sniffing the schema stamp
the file carries (see :mod:`repro.io.formats` for the registry).

The legacy per-artifact ``dump_*``/``load_*`` pairs remain as thin
deprecation shims over the registry; new code should call
``io.dump(obj, path)`` / ``io.load(path)``.  The NDJSON streaming
primitives (:mod:`repro.io.ndjson`) are *not* deprecated — they are the
byte-level contract shared with the record sinks and the service plane.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Mapping

from repro.io import formats
from repro.io.formats import FORMATS, Format, dump, load, register_format, sniff_format
from repro.io.ndjson import (
    RECORDS_NDJSON_SCHEMA,
    dump_records_ndjson,
    iter_records_ndjson,
    parse_records_ndjson_header,
    prepare_ndjson_append,
    record_ndjson_line,
    records_ndjson_header,
)
from repro.io.runs import report_to_dict, result_from_dict, result_to_dict

__all__ = [
    # the unified entry points
    "dump",
    "load",
    "sniff_format",
    "Format",
    "FORMATS",
    "register_format",
    # dict converters (not file formats; no shims needed)
    "result_to_dict",
    "result_from_dict",
    "report_to_dict",
    # streaming NDJSON plane (first-class, shared with sinks and serve)
    "RECORDS_NDJSON_SCHEMA",
    "record_ndjson_line",
    "records_ndjson_header",
    "parse_records_ndjson_header",
    "prepare_ndjson_append",
    "dump_records_ndjson",
    "iter_records_ndjson",
    # deprecated per-artifact shims
    "dump_report",
    "load_result",
    "dump_records",
    "load_records",
    "records_to_csv",
    "dump_sweep",
    "load_sweep",
    "dump_trace",
    "load_trace",
    "dump_bench",
    "load_bench",
    "dump_baseline",
    "load_baseline",
    "dump_repro",
    "load_repro",
    "dump_conform_report",
    "load_conform_report",
    "dump_lattice_report",
    "load_lattice_report",
]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.io.{old} is deprecated; use repro.io.{new} "
        "(removal after two release cycles — see docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )


# -- deprecated shims ----------------------------------------------------------
#
# One thin wrapper per legacy pair, each pinned to the format name the
# registry dispatches to, so behavior (validation included) is exactly
# the registry's.


def dump_report(report, path, *, include_trace: bool = False) -> None:
    """Deprecated shim: write a bSM report (use :func:`dump`)."""
    _deprecated("dump_report", "dump")
    if include_trace:
        import json as _json

        with open(path, "w", encoding="utf-8") as handle:
            _json.dump(report_to_dict(report, include_trace=True), handle, indent=2)
        return
    dump(report, path, format="bsm-report")


def load_result(path):
    """Deprecated shim: read a run result back (use :func:`load`)."""
    _deprecated("load_result", "load")
    return load(path, format="bsm-report")


def dump_records(records, path) -> None:
    """Deprecated shim: write a record set as JSON (use :func:`dump`)."""
    _deprecated("dump_records", "dump")
    dump(records, path, format="run-records")


def load_records(path):
    """Deprecated shim: read a record set back (use :func:`load`)."""
    _deprecated("load_records", "load")
    return load(path, format="run-records")


def records_to_csv(records, path) -> None:
    """Write a record set as CSV (one row per run, scalar columns)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(records.to_csv())


def dump_sweep(sweep, path) -> None:
    """Deprecated shim: write a sweep spec (use :func:`dump`)."""
    _deprecated("dump_sweep", "dump")
    dump(sweep, path, format="sweep")


def load_sweep(path):
    """Deprecated shim: read a sweep back (use :func:`load`)."""
    _deprecated("load_sweep", "load")
    return load(path, format="sweep")


def dump_bench(result, path) -> None:
    """Deprecated shim: write a bench result (use :func:`dump`)."""
    _deprecated("dump_bench", "dump")
    dump(result, path, format="bench-result")


def load_bench(path):
    """Deprecated shim: read a bench result back (use :func:`load`)."""
    _deprecated("load_bench", "load")
    return load(path, format="bench-result")


def dump_baseline(baseline, path) -> None:
    """Deprecated shim: write a bench baseline (use :func:`dump`)."""
    _deprecated("dump_baseline", "dump")
    dump(baseline, path, format="bench-baseline")


def load_baseline(path) -> dict:
    """Deprecated shim: read a bench baseline back (use :func:`load`)."""
    _deprecated("load_baseline", "load")
    return load(path, format="bench-baseline")


def dump_repro(repro, path) -> None:
    """Deprecated shim: write a conform repro file (use :func:`dump`)."""
    _deprecated("dump_repro", "dump")
    dump(repro, path, format="conform-repro")


def load_repro(path):
    """Deprecated shim: read a repro file back (use :func:`load`)."""
    _deprecated("load_repro", "load")
    return load(path, format="conform-repro")


def dump_conform_report(report, path) -> None:
    """Deprecated shim: write a conformance report (use :func:`dump`)."""
    _deprecated("dump_conform_report", "dump")
    dump(report, path, format="conform-report")


def load_conform_report(path):
    """Deprecated shim: read a conformance report back (use :func:`load`)."""
    _deprecated("load_conform_report", "load")
    return load(path, format="conform-report")


def dump_lattice_report(report: Mapping, path) -> None:
    """Deprecated shim: write a lattice report (use :func:`dump`)."""
    _deprecated("dump_lattice_report", "dump")
    dump(report, path, format="lattice-report")


def load_lattice_report(path) -> dict:
    """Deprecated shim: read a lattice report back (use :func:`load`)."""
    _deprecated("load_lattice_report", "load")
    return load(path, format="lattice-report")


def dump_trace(events: Iterable, path) -> None:
    """Deprecated shim: write kernel trace events (use :func:`dump`)."""
    _deprecated("dump_trace", "dump")
    dump(events, path, format="kernel-trace")


def load_trace(path) -> list:
    """Deprecated shim: read trace events back (use :func:`load`)."""
    _deprecated("load_trace", "load")
    return load(path, format="kernel-trace")
