"""Trace analysis: understanding where a protocol's traffic goes.

Runs executed with ``record_trace=True`` carry the full message
history.  These helpers turn it into the aggregates the benchmarks and
examples report: per-round load, per-channel traffic, and a histogram
over protocol message kinds (mux instances unwrapped, relay envelopes
classified).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.crypto.encoding import encoded_size
from repro.errors import ProtocolError
from repro.ids import PartyId
from repro.net.process import Envelope

__all__ = [
    "messages_per_round",
    "bytes_per_round",
    "traffic_matrix",
    "tag_histogram",
    "cross_side_fraction",
    "summarize_trace",
]


def _payload_size(payload: object) -> int:
    try:
        return encoded_size(payload)
    except ProtocolError:
        return len(repr(payload).encode("utf-8"))


def messages_per_round(trace: Sequence[Envelope]) -> dict[int, int]:
    """Message count per send round."""
    counts: Counter = Counter()
    for envelope in trace:
        counts[envelope.sent_round] += 1
    return dict(sorted(counts.items()))


def bytes_per_round(trace: Sequence[Envelope]) -> dict[int, int]:
    """Encoded payload bytes per send round."""
    totals: Counter = Counter()
    for envelope in trace:
        totals[envelope.sent_round] += _payload_size(envelope.payload)
    return dict(sorted(totals.items()))


def traffic_matrix(trace: Sequence[Envelope]) -> dict[tuple[PartyId, PartyId], int]:
    """Messages per directed channel ``(src, dst)``."""
    counts: Counter = Counter()
    for envelope in trace:
        counts[(envelope.src, envelope.dst)] += 1
    return dict(sorted(counts.items()))


def _classify(payload: object) -> str:
    """A stable label for a payload's protocol role.

    Transparent wrappers (mux instances, direct-link envelopes) are
    unwrapped so the label reflects the inner protocol vocabulary.
    """
    for _ in range(16):  # wrappers never nest deeper in practice
        if isinstance(payload, tuple) and len(payload) == 3 and payload[0] == "mux":
            payload = payload[2]
            continue
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] in ("lnk.direct", "rl.direct")
        ):
            payload = payload[1]
            continue
        break
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        return payload[0]
    return type(payload).__name__


def tag_histogram(trace: Sequence[Envelope]) -> dict[str, int]:
    """Histogram over protocol message kinds.

    Mux wrappers are unwrapped, so the counts reflect the inner
    protocol vocabulary: ``val``/``prop``/``king``/``echo`` (phase
    king), ``ds`` (Dolev-Strong), ``bbin``, ``rl.req``/``rl.fwd``/
    ``rl.direct`` (relays), ``trl.req``/``trl.fwd`` (timed relay),
    ``prefs``/``suggest`` (PiBSM), ...
    """
    counts: Counter = Counter()
    for envelope in trace:
        counts[_classify(envelope.payload)] += 1
    return dict(sorted(counts.items(), key=lambda item: (-item[1], item[0])))


def cross_side_fraction(trace: Sequence[Envelope]) -> float:
    """Fraction of messages crossing between L and R (vs same-side)."""
    if not trace:
        return 0.0
    crossing = sum(1 for e in trace if e.src.side != e.dst.side)
    return crossing / len(trace)


def summarize_trace(trace: Sequence[Envelope], *, top: int = 6) -> str:
    """A compact multi-line textual summary of a trace."""
    if not trace:
        return "empty trace"
    per_round = messages_per_round(trace)
    histogram = tag_histogram(trace)
    peak_round = max(per_round, key=per_round.get)
    lines = [
        f"messages: {len(trace)} over rounds {min(per_round)}..{max(per_round)}",
        f"peak round: {peak_round} ({per_round[peak_round]} messages)",
        f"cross-side traffic: {cross_side_fraction(trace):.0%}",
        "top message kinds: "
        + ", ".join(f"{tag} x{count}" for tag, count in list(histogram.items())[:top]),
    ]
    return "\n".join(lines)
