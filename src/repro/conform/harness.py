"""The conformance harness: ensemble in, deterministic report out.

:func:`run_conformance` draws a seeded scenario ensemble
(:mod:`repro.conform.generators`), evaluates every applicable oracle
(:mod:`repro.conform.oracles`) on each scenario through one memoized
:class:`~repro.conform.oracles.OracleContext`, and — on violation —
shrinks the scenario to a minimal reproducing case
(:mod:`repro.conform.shrink`) and captures it as a :class:`ReproFile`.

Reports and repro files are canonical JSON, free of wall-clock and host
metadata, so ``repro conform run --seed 0 --budget N`` produces
byte-identical output on every invocation — the report itself is a
regression artifact.  A repro file is self-contained: ``repro conform
replay FILE`` rebuilds the spec, re-evaluates the named oracle, and
confirms (exit 0) or refutes (exit 1) the recorded violation.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.conform.generators import EnsembleConfig, generate_scenarios
from repro.conform.oracles import (
    Oracle,
    OracleContext,
    Violation,
    resolve_oracles,
)
from repro.conform.shrink import shrink
from repro.errors import ConformError, ReproError
from repro.experiment.engine import Session
from repro.experiment.spec import ScenarioSpec

__all__ = [
    "REPRO_SCHEMA",
    "REPORT_SCHEMA",
    "ReproFile",
    "ConformanceReport",
    "run_conformance",
    "replay_repro",
]

REPRO_SCHEMA = "repro.conform.repro/1"
REPORT_SCHEMA = "repro.conform.report/1"


@dataclass(frozen=True)
class ReproFile:
    """A minimal reproducing case for one oracle violation."""

    oracle: str
    spec: ScenarioSpec
    original: ScenarioSpec
    violations: tuple[Violation, ...]
    shrink_steps: int = 0
    shrink_trail: tuple[str, ...] = ()
    seed: int | None = None

    def to_dict(self) -> dict:
        data: dict = {
            "schema": REPRO_SCHEMA,
            "oracle": self.oracle,
            "spec": self.spec.to_dict(),
            "original": self.original.to_dict(),
            "violations": [v.to_dict() for v in self.violations],
            "shrink_steps": self.shrink_steps,
            "shrink_trail": list(self.shrink_trail),
        }
        if self.seed is not None:
            data["seed"] = self.seed
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping) -> "ReproFile":
        if not isinstance(data, Mapping) or data.get("schema") != REPRO_SCHEMA:
            raise ConformError(
                f"repro files must carry schema={REPRO_SCHEMA!r}, "
                f"got {data.get('schema') if isinstance(data, Mapping) else data!r}"
            )
        try:
            return cls(
                oracle=data["oracle"],
                spec=ScenarioSpec.from_dict(data["spec"]),
                original=ScenarioSpec.from_dict(data.get("original", data["spec"])),
                violations=tuple(
                    Violation.from_dict(v) for v in data.get("violations", ())
                ),
                shrink_steps=int(data.get("shrink_steps", 0)),
                shrink_trail=tuple(data.get("shrink_trail", ())),
                seed=data.get("seed"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConformError(f"malformed repro file: {exc!r}") from exc

    @classmethod
    def from_json(cls, text: str) -> "ReproFile":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConformError(f"repro file is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


@dataclass(frozen=True)
class ConformanceReport:
    """One conformance run, distilled to canonical JSON.

    Deterministic for a ``(seed, budget, oracles)`` triple: no timing,
    no host fingerprints.  ``elapsed_seconds`` lives outside
    serialization (compare=False), mirroring ``RunRecordSet``.
    """

    seed: int
    budget: int
    oracle_names: tuple[str, ...]
    scenarios: int
    checks: int
    violations: tuple[Violation, ...]
    repros: tuple[ReproFile, ...] = ()
    repro_paths: tuple[str, ...] = ()
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        text = (
            f"conform seed={self.seed} budget={self.budget}: "
            f"{self.scenarios} scenarios, {self.checks} oracle checks, "
            f"{len(self.violations)} violation(s)"
        )
        if self.elapsed_seconds:
            text += f", {self.elapsed_seconds:.2f}s"
        return text

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "budget": self.budget,
            "oracles": list(self.oracle_names),
            "scenarios": self.scenarios,
            "checks": self.checks,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "repro_files": list(self.repro_paths),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping) -> "ConformanceReport":
        if not isinstance(data, Mapping) or data.get("schema") != REPORT_SCHEMA:
            raise ConformError(
                f"conformance reports must carry schema={REPORT_SCHEMA!r}, "
                f"got {data.get('schema') if isinstance(data, Mapping) else data!r}"
            )
        return cls(
            seed=int(data["seed"]),
            budget=int(data["budget"]),
            oracle_names=tuple(data.get("oracles", ())),
            scenarios=int(data["scenarios"]),
            checks=int(data["checks"]),
            violations=tuple(Violation.from_dict(v) for v in data.get("violations", ())),
            repro_paths=tuple(data.get("repro_files", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "ConformanceReport":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConformError(f"conformance report is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def run_conformance(
    *,
    seed: int = 0,
    budget: int = 100,
    config: EnsembleConfig | None = None,
    oracles: Sequence[str] | None = None,
    session: Session | None = None,
    shrink_violations: bool = True,
    repro_dir: str | os.PathLike | None = None,
) -> ConformanceReport:
    """Run one conformance sweep: generate, check, shrink, capture.

    ``budget`` is the ensemble size (scenario count) — determinism
    demands a count, not a wall-clock.  When ``repro_dir`` is given,
    each violation's shrunk case is written there as
    ``repro_<oracle>_<index>.json`` (deterministic names).
    """
    started = time.perf_counter()
    selected = resolve_oracles(oracles)
    ctx = OracleContext(session)
    specs = generate_scenarios(config, seed=seed, count=budget)

    checks = 0
    all_violations: list[Violation] = []
    repros: list[ReproFile] = []
    for spec in specs:
        for oracle in selected:
            counted = False
            try:
                if not oracle.applies(spec):
                    continue
                counted = True
                checks += 1
                violations = oracle.check(spec, ctx)
            except ReproError as exc:
                # A crashing check IS a finding (an engine bug the
                # fuzzer reached) — record it and keep the budget going
                # instead of aborting the whole run.
                if not counted:
                    checks += 1
                violations = (
                    Violation(
                        oracle=oracle.name,
                        scenario=spec.label(),
                        message=f"oracle check crashed: {exc}",
                        details=(("exception", type(exc).__name__),),
                    ),
                )
            if not violations:
                continue
            all_violations.extend(violations)
            if shrink_violations:
                result = shrink(spec, oracle, ctx)
                repros.append(
                    ReproFile(
                        oracle=oracle.name,
                        spec=result.spec,
                        original=spec,
                        violations=result.violations or violations,
                        shrink_steps=result.steps,
                        shrink_trail=result.trail,
                        seed=seed,
                    )
                )
            else:
                repros.append(
                    ReproFile(
                        oracle=oracle.name, spec=spec, original=spec,
                        violations=violations, seed=seed,
                    )
                )

    paths: list[str] = []
    if repro_dir is not None and repros:
        os.makedirs(repro_dir, exist_ok=True)
        for index, repro in enumerate(repros):
            name = f"repro_{repro.oracle}_{index}.json"
            path = os.path.join(repro_dir, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(repro.to_json())
            paths.append(name)

    return ConformanceReport(
        seed=seed,
        budget=budget,
        oracle_names=tuple(oracle.name for oracle in selected),
        scenarios=len(specs),
        checks=checks,
        violations=tuple(all_violations),
        repros=tuple(repros),
        repro_paths=tuple(paths),
        elapsed_seconds=time.perf_counter() - started,
    )


def replay_repro(
    repro: ReproFile, session: Session | None = None
) -> tuple[bool, tuple[Violation, ...]]:
    """Re-evaluate a repro file's oracle on its shrunk spec.

    Returns ``(reproduced, fresh_violations)``.  Raises
    :class:`~repro.errors.ConformError` when the named oracle is not
    registered (a repro from a foreign oracle set cannot be judged).
    """
    (oracle,) = resolve_oracles([repro.oracle])
    ctx = OracleContext(session)
    try:
        if not oracle.applies(repro.spec):
            return False, ()
        violations = oracle.check(repro.spec, ctx)
    except ReproError as exc:
        # The check still crashes — that reproduces a crash finding
        # (mirrors run_conformance's handling).
        violations = (
            Violation(
                oracle=oracle.name,
                scenario=repro.spec.label(),
                message=f"oracle check crashed: {exc}",
                details=(("exception", type(exc).__name__),),
            ),
        )
    return bool(violations), violations
