"""Declarative conformance oracles: what must hold, checked per scenario.

An :class:`Oracle` is a named invariant over one scenario's execution:
``applies(spec)`` scopes it (a success oracle has nothing to say about
a link-faulted run), ``check(spec, ctx)`` evaluates it and returns
structured :class:`Violation` reports.  The :class:`OracleContext`
memoizes executions per ``(spec, runtime)``, so several oracles probing
the same scenario pay for one run, and the differential oracle pays for
one run *per runtime*, not per comparison.

Built-ins (the registry :data:`ORACLES`, extensible via
:func:`register_oracle`):

* ``solvable_ok`` — on a solvable, fault-free-channel setting, every
  record must pass all four bSM properties (the paper's Theorems as a
  falsifiable claim);
* ``agreement`` — honest parties' outputs must stay symmetric and the
  run must terminate (bsm and roommates), channels permitting;
* ``lattice_membership`` — honest outputs must form a *single element*
  of the effective instance's stable-matching lattice, enumerated via
  the rotation poset (:mod:`repro.rotations`) — stability, agreement,
  and completeness in one combinatorial check;
* ``verdict_consistency`` — the ``solvable``/``theorem`` columns on
  records must agree with :func:`~repro.core.solvability.cached_is_solvable`
  (records cannot drift from the oracle that scheduled them);
* ``runtime_differential`` — the same spec executed by Lockstep, Event,
  and Batch runtimes must produce byte-identical records (the
  semantics-preservation contract, enforced on *generated* scenarios,
  not just the hand-picked equivalence suite);
* ``executor_differential`` — the same contract one layer up: the
  engine's serial, batch, and parallel execution planes must produce
  byte-identical records for the spec (the parallel plane's sharding,
  per-worker caches, and record round-trip through the pool are all on
  trial here).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.core.solvability import cached_is_solvable
from repro.errors import ConformError
from repro.experiment.engine import Session
from repro.experiment.lattice_tags import effective_profile
from repro.experiment.records import RunRecordSet
from repro.experiment.spec import ExecutorSpec, ScenarioSpec, Sweep
from repro.rotations import cached_poset, consistent_position, outputs_to_partners
from repro.runtime.api import RUNTIME_NAMES

__all__ = [
    "Violation",
    "Oracle",
    "OracleContext",
    "ORACLES",
    "register_oracle",
    "unregister_oracle",
    "resolve_oracles",
    "default_oracle_names",
    "differential_sweep",
    "localhost_executor",
    "DIFFERENTIAL_EXECUTORS",
]

#: The execution planes the executor-differential oracle compares.  The
#: ``process`` executor is covered transitively (it runs the same
#: serial per-spec path inside each worker and is exercised by the
#: engine's own differential suite); ``parallel`` is the plane with new
#: moving parts (sharding, per-worker caches, warm starts).  The
#: ``hosts`` executor is opt-in (pass ``executors=(..., "hosts")``): it
#: spawns localhost worker subprocesses (see :func:`localhost_executor`),
#: which is the right cost for a dedicated suite or a CI smoke job but
#: not for every fuzzing run.
DIFFERENTIAL_EXECUTORS = ("serial", "batch", "parallel")


def localhost_executor(executor: str) -> "str | ExecutorSpec":
    """An engine-ready executor argument for a differential leg.

    The ``hosts`` executor needs endpoints; differential checks always
    mean "this machine, two workers" — a two-endpoint localhost plane
    exercises chunking, work stealing, and reassembly without network.
    Every other executor name passes through unchanged.
    """
    if executor == "hosts":
        return ExecutorSpec(name="hosts", hosts=("local", "local"))
    return executor


@dataclass(frozen=True)
class Violation:
    """One oracle failure, structured for reports and repro files."""

    oracle: str
    scenario: str
    message: str
    details: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "details", tuple((str(k), str(v)) for k, v in self.details)
        )

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "scenario": self.scenario,
            "message": self.message,
            "details": [list(pair) for pair in self.details],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Violation":
        return cls(
            oracle=data["oracle"],
            scenario=data["scenario"],
            message=data["message"],
            details=tuple(tuple(pair) for pair in data.get("details", ())),
        )


class OracleContext:
    """Memoized scenario execution, shared by every oracle of a run.

    Keyed by ``(spec canonical JSON, runtime override)`` so re-checking
    a spec (during shrinking, or by several oracles) never re-executes
    it.  ``records(spec)`` is the canonical execution (the spec's own
    runtime); ``records_for_runtime`` pins the runtime axis.
    """

    def __init__(self, session: Session | None = None) -> None:
        self.session = session if session is not None else Session()
        self._memo: dict[tuple[str, str], RunRecordSet] = {}
        self.executions = 0

    def records(self, spec: ScenarioSpec) -> RunRecordSet:
        return self.records_for_runtime(spec, spec.runtime)

    def records_for_runtime(self, spec: ScenarioSpec, runtime: str) -> RunRecordSet:
        pinned = spec if spec.family != "bsm" or spec.runtime == runtime else replace(
            spec, runtime=runtime
        )
        key = (spec.to_json(), runtime if spec.family == "bsm" else "")
        cached = self._memo.get(key)
        if cached is None:
            self.executions += 1
            cached = self.session.run(pinned)
            self._memo[key] = cached
        return cached

    def records_for_executor(self, spec: ScenarioSpec, executor: str) -> RunRecordSet:
        """The spec executed through one engine executor (memoized).

        ``serial`` delegates to the canonical :meth:`records` memo — the
        session's single-run path is the serial plane.  The pool-backed
        executors stay cheap per spec: a one-spec sweep is a single
        shard, which the parallel plane runs in-process.
        """
        if executor == "serial":
            return self.records(spec)
        key = (spec.to_json(), f"executor:{executor}")
        cached = self._memo.get(key)
        if cached is None:
            self.executions += 1
            cached = self.session.sweep(
                Sweep.of(spec), executor=localhost_executor(executor)
            )
            self._memo[key] = cached
        return cached


@dataclass(frozen=True)
class Oracle:
    """One named invariant (see the module docstring for the built-ins).

    Subclasses override :meth:`applies` / :meth:`check`; the base class
    applies to nothing, so a misregistered bare Oracle is inert rather
    than wrong.
    """

    name: str = ""

    def applies(self, spec: ScenarioSpec) -> bool:
        return False

    def check(self, spec: ScenarioSpec, ctx: OracleContext) -> tuple[Violation, ...]:
        return ()

    # -- helpers for subclasses ----------------------------------------------

    def _violation(
        self, spec: ScenarioSpec, message: str, **details: object
    ) -> Violation:
        return Violation(
            oracle=self.name,
            scenario=spec.label(),
            message=message,
            details=tuple(sorted((k, str(v)) for k, v in details.items())),
        )


def _lossless(spec: ScenarioSpec) -> bool:
    return spec.adversary is None or spec.adversary.link is None


class SolvableMustSucceed(Oracle):
    """Solvable settings with budget-respecting adversaries must succeed."""

    def __init__(self) -> None:
        super().__init__(name="solvable_ok")

    def applies(self, spec: ScenarioSpec) -> bool:
        return (
            spec.family == "bsm"
            and spec.recipe is None
            and _lossless(spec)
            and cached_is_solvable(spec.setting()).solvable
        )

    def check(self, spec: ScenarioSpec, ctx: OracleContext) -> tuple[Violation, ...]:
        return tuple(
            self._violation(
                spec,
                "solvable setting failed simulation",
                violations="; ".join(record.violations),
                adversary=record.adversary,
                rounds=record.rounds,
            )
            for record in ctx.records(spec)
            if not record.ok
        )


class HonestAgreement(Oracle):
    """Honest parties terminate and output symmetrically (lossless channels)."""

    def __init__(self) -> None:
        super().__init__(name="agreement")

    def applies(self, spec: ScenarioSpec) -> bool:
        if spec.family == "bsm":
            return (
                spec.recipe is None
                and _lossless(spec)
                and cached_is_solvable(spec.setting()).solvable
            )
        return spec.family == "roommates"

    def check(self, spec: ScenarioSpec, ctx: OracleContext) -> tuple[Violation, ...]:
        failures = []
        for record in ctx.records(spec):
            if not record.termination:
                failures.append(
                    self._violation(spec, "honest parties did not all terminate")
                )
            if not record.symmetry:
                failures.append(
                    self._violation(
                        spec,
                        "honest outputs are not symmetric",
                        outputs=record.outputs,
                    )
                )
        return tuple(failures)


class LatticeMembership(Oracle):
    """Honest outputs must form one element of the enumerated lattice.

    The deterministic protocols promise more than stability: every
    honest party must land on the *same* stable matching of the
    effective instance.  This oracle enumerates that instance's lattice
    via the rotation poset (:mod:`repro.rotations`) and demands a single
    lattice element consistent with every honest party's declared
    output — which simultaneously checks stability (the element is a
    stable matching), agreement (one element fits everyone), and
    completeness (a ``None`` output matches no lattice element).

    Scope: solvable, lossless bsm points whose effective instance is
    knowable — no adversary, an honest-behaving one, or a silent one
    (Lemma 1's default-list substitution pins the instance).  Noise,
    crash, and equivocation adversaries can change which instance the
    honest parties effectively solve, so those runs are out of scope
    here (the service plane tags them ``unscored`` instead).
    """

    def __init__(self) -> None:
        super().__init__(name="lattice_membership")

    def applies(self, spec: ScenarioSpec) -> bool:
        return (
            spec.family == "bsm"
            and spec.recipe is None
            and _lossless(spec)
            and cached_is_solvable(spec.setting()).solvable
            and effective_profile(spec) is not None
        )

    def check(self, spec: ScenarioSpec, ctx: OracleContext) -> tuple[Violation, ...]:
        profile = effective_profile(spec)
        assert profile is not None  # applies() gates on this
        poset = cached_poset(profile)
        failures = []
        for record in ctx.records(spec):
            if not record.outputs:
                continue  # every party corrupted: nothing honest to check
            outputs = outputs_to_partners(record.outputs)
            if consistent_position(poset, outputs) is None:
                failures.append(
                    self._violation(
                        spec,
                        "honest outputs match no element of the stable-matching lattice",
                        outputs=record.outputs,
                        rotations=len(poset),
                        lattice_size=poset.count_stable_matchings(limit=10_000),
                    )
                )
        return tuple(failures)


class VerdictConsistency(Oracle):
    """Record columns must agree with the (memoized) solvability oracle."""

    def __init__(self) -> None:
        super().__init__(name="verdict_consistency")

    def applies(self, spec: ScenarioSpec) -> bool:
        return spec.family == "bsm"

    def check(self, spec: ScenarioSpec, ctx: OracleContext) -> tuple[Violation, ...]:
        verdict = cached_is_solvable(spec.setting())
        failures = []
        for record in ctx.records(spec):
            if record.solvable is not verdict.solvable:
                failures.append(
                    self._violation(
                        spec,
                        "record solvable column disagrees with cached_is_solvable",
                        record=record.solvable,
                        oracle_verdict=verdict.solvable,
                    )
                )
            if record.theorem != verdict.theorem:
                failures.append(
                    self._violation(
                        spec,
                        "record theorem column disagrees with cached_is_solvable",
                        record=record.theorem,
                        oracle_verdict=verdict.theorem,
                    )
                )
        return tuple(failures)


class RuntimeDifferential(Oracle):
    """Lockstep/Event/Batch must produce byte-identical records."""

    runtimes: tuple[str, ...] = RUNTIME_NAMES

    def __init__(self, runtimes: Sequence[str] = RUNTIME_NAMES) -> None:
        super().__init__(name="runtime_differential")
        object.__setattr__(self, "runtimes", tuple(runtimes))

    def applies(self, spec: ScenarioSpec) -> bool:
        # Unsolvable recipe-less points never execute, so there is
        # nothing to differentiate; run everything else.
        return spec.family == "bsm" and (
            spec.recipe is not None or cached_is_solvable(spec.setting()).recipe is not None
        )

    def check(self, spec: ScenarioSpec, ctx: OracleContext) -> tuple[Violation, ...]:
        reference_runtime = self.runtimes[0]
        reference = ctx.records_for_runtime(spec, reference_runtime).to_json()
        failures = []
        for runtime in self.runtimes[1:]:
            candidate = ctx.records_for_runtime(spec, runtime).to_json()
            if candidate != reference:
                failures.append(
                    self._violation(
                        spec,
                        f"{runtime} runtime records diverge from {reference_runtime}",
                        runtime=runtime,
                        reference=reference_runtime,
                    )
                )
        return tuple(failures)


class ExecutorDifferential(Oracle):
    """Serial/Batch/Parallel engine executors must agree byte-for-byte.

    :class:`RuntimeDifferential` one layer up the stack: instead of
    pinning the kernel scheduling axis, this pins the *engine* executor
    axis.  Per spec, the batch leg puts the shared-cache plane on trial
    and the parallel leg its single-shard plumbing (chunk bounds, stats
    merge, the in-process short-circuit) — a one-spec sweep is one
    shard, so the *pool* round-trip and multi-shard reassembly are
    deliberately not re-executed here per scenario; they are covered at
    ensemble granularity by :func:`differential_sweep` with
    ``executors=`` and by the engine's own differential suite.  Passing
    ``executors=(..., "hosts")`` adds the cross-host plane on a
    two-worker localhost deployment (see :func:`localhost_executor`).
    """

    executors: tuple[str, ...] = DIFFERENTIAL_EXECUTORS

    def __init__(self, executors: Sequence[str] = DIFFERENTIAL_EXECUTORS) -> None:
        super().__init__(name="executor_differential")
        object.__setattr__(self, "executors", tuple(executors))

    def applies(self, spec: ScenarioSpec) -> bool:
        # Same scope as the runtime differential: bsm points that
        # actually execute.  (Other families take the same code path
        # under every executor, so there is nothing to differentiate.)
        return spec.family == "bsm" and (
            spec.recipe is not None or cached_is_solvable(spec.setting()).recipe is not None
        )

    def check(self, spec: ScenarioSpec, ctx: OracleContext) -> tuple[Violation, ...]:
        reference_executor = self.executors[0]
        reference = ctx.records_for_executor(spec, reference_executor).to_json()
        failures = []
        for executor in self.executors[1:]:
            candidate = ctx.records_for_executor(spec, executor).to_json()
            if candidate != reference:
                failures.append(
                    self._violation(
                        spec,
                        f"{executor} executor records diverge from {reference_executor}",
                        executor=executor,
                        reference=reference_executor,
                    )
                )
        return tuple(failures)


class TheoryStatistics(Oracle):
    """Large offline runs must match the Mertens/mean-field asymptotics.

    Applies to offline Gale–Shapley runs on uniform random complete
    profiles at ``k >= 32`` (below that, single-instance variance
    drowns the signal): the run's mean proposer partner rank
    (``proposals / k``) and mean receiver partner rank
    (``receiver_rank / k``) must land inside the generous per-instance
    tolerance bands of :mod:`repro.ensembles.theory`, and the matching
    must be perfect.  The tight ensemble-level gate lives in
    :func:`repro.ensembles.check_rank_statistics`; this per-spec oracle
    catches gross engine breakage (skewed sampling, wrong proposal
    order, early termination) from any single large instance the
    fuzzer or an ensemble draws.
    """

    MIN_K = 32

    def __init__(self) -> None:
        super().__init__(name="theory_stats")

    def applies(self, spec: ScenarioSpec) -> bool:
        return (
            spec.family == "offline"
            and spec.algorithm == "gale_shapley"
            and spec.profile is not None
            and spec.profile.kind == "random"
            and spec.k >= self.MIN_K
        )

    def check(self, spec: ScenarioSpec, ctx: OracleContext) -> tuple[Violation, ...]:
        from repro.ensembles.theory import proposer_rank_band, receiver_rank_band

        failures = []
        for record in ctx.records(spec):
            if record.matched != spec.k:
                failures.append(
                    self._violation(
                        spec,
                        "complete uniform preferences must produce a perfect matching",
                        matched=record.matched,
                        k=spec.k,
                    )
                )
                continue
            checks = (
                ("proposer", record.proposals / spec.k,
                 proposer_rank_band(spec.k, scope="instance")),
                ("receiver", record.receiver_rank / spec.k,
                 receiver_rank_band(spec.k, scope="instance")),
            )
            for side, measured, band in checks:
                if not band.contains(measured):
                    failures.append(
                        self._violation(
                            spec,
                            f"mean {side} rank outside the per-instance theory band",
                            measured=round(measured, 6),
                            band=band.describe(),
                        )
                    )
        return tuple(failures)


#: The oracle registry.  Tests may :func:`register_oracle` extra (even
#: deliberately broken) oracles; the CLI resolves names against this.
ORACLES: dict[str, Oracle] = {}


def register_oracle(oracle: Oracle) -> Oracle:
    """Add an oracle to the registry (replacing any same-named one)."""
    if not oracle.name:
        raise ConformError("oracles must carry a non-empty name")
    ORACLES[oracle.name] = oracle
    return oracle


def unregister_oracle(name: str) -> None:
    """Remove an oracle (tests clean up their injected ones)."""
    ORACLES.pop(name, None)


for _oracle in (
    SolvableMustSucceed(),
    HonestAgreement(),
    LatticeMembership(),
    VerdictConsistency(),
    RuntimeDifferential(),
    ExecutorDifferential(),
    TheoryStatistics(),
):
    register_oracle(_oracle)

#: Names of the built-in oracles, in evaluation order.
_DEFAULT_NAMES = (
    "solvable_ok",
    "agreement",
    "lattice_membership",
    "verdict_consistency",
    "runtime_differential",
    "executor_differential",
    "theory_stats",
)


def default_oracle_names() -> tuple[str, ...]:
    """The built-in oracle names, in evaluation order."""
    return _DEFAULT_NAMES


def resolve_oracles(names: Sequence[str] | None = None) -> tuple[Oracle, ...]:
    """Oracles for ``names`` (default: the built-ins, in order)."""
    selected = tuple(names) if names is not None else _DEFAULT_NAMES
    missing = [name for name in selected if name not in ORACLES]
    if missing:
        raise ConformError(
            f"unknown oracle(s) {missing}; registered: {sorted(ORACLES)}"
        )
    return tuple(ORACLES[name] for name in selected)


def differential_sweep(
    specs: Sequence[ScenarioSpec],
    session: Session | None = None,
    runtimes: Sequence[str] = RUNTIME_NAMES,
    executors: Sequence[str] = (),
) -> tuple[Violation, ...]:
    """The differential oracles, vectorized over a whole ensemble.

    Executes all ``specs`` once per runtime through the batch executor
    (the sweep fast path) and compares the record *sets* — byte-for-byte
    the same invariant as per-spec checking, at sweep throughput.
    Only bsm specs participate; others pass through untouched (they have
    no runtime axis) and always compare equal.

    ``executors`` optionally extends the comparison along the engine's
    executor axis (e.g. :data:`DIFFERENTIAL_EXECUTORS`): the whole
    ensemble is re-executed once per named executor — one pool spin-up
    per executor, not per spec — and each result stream is compared
    against the reference.  The executor that produced the reference
    (the session's own) is skipped: re-running it could only compare
    the plane against itself.
    """
    session = session if session is not None else Session(executor="batch")
    reference_runtime = runtimes[0]
    # Session stand-ins in tests may not expose an engine; an unknown
    # reference executor then skips nothing.
    reference_executor = getattr(getattr(session, "engine", None), "executor", "")

    def pinned(runtime: str) -> list[ScenarioSpec]:
        return [
            replace(spec, runtime=runtime) if spec.family == "bsm" else spec
            for spec in specs
        ]

    def compare(
        candidate: RunRecordSet, axis: str, value: str, reference_label: str
    ) -> list[Violation]:
        if len(candidate) != len(reference):
            return [
                Violation(
                    oracle=f"{axis}_differential",
                    scenario=f"<ensemble of {len(specs)} specs>",
                    message=(
                        f"{value} {axis} emitted {len(candidate)} records "
                        f"vs {len(reference)} from {reference_label}"
                    ),
                    details=(("reference", reference_label), (axis, value)),
                )
            ]
        # Both sweeps flatten the same specs in order, so the record
        # streams are index-aligned even when a spec emits several rows.
        return [
            Violation(
                oracle=f"{axis}_differential",
                scenario=ref_record.scenario,
                message=f"{value} {axis} records diverge from {reference_label}",
                details=(("reference", reference_label), (axis, value)),
            )
            for ref_record, cand_record in zip(reference, candidate)
            if ref_record.to_dict() != cand_record.to_dict()
        ]

    reference = session.sweep(pinned(reference_runtime))
    failures: list[Violation] = []
    # A missing/extra record is itself the divergence — compare() reports
    # the length mismatch rather than letting a truncating zip hide the
    # tail.
    for runtime in runtimes[1:]:
        failures.extend(
            compare(session.sweep(pinned(runtime)), "runtime", runtime, reference_runtime)
        )
    for executor in executors:
        if executor == reference_executor:
            continue  # the reference already ran on this plane
        failures.extend(
            compare(
                session.sweep(
                    pinned(reference_runtime), executor=localhost_executor(executor)
                ),
                "executor",
                executor,
                f"the {reference_executor} executor",
            )
        )
    return tuple(failures)
