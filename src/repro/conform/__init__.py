"""The conformance harness: systematic adversarial probing as a subsystem.

The paper's guarantees (BSM with strong unanimity, the PIBSM
solvability characterization, the roommates extension) survive only
under systematic probing.  This package turns the hand-written attacks
and sampled property tests into machinery:

* :mod:`repro.conform.generators` — seed-reproducible random scenario
  ensembles (:class:`EnsembleConfig` → :class:`~repro.experiment.ScenarioSpec`
  streams) that flow through the normal ``Session``/``Engine`` path;
* :mod:`repro.conform.oracles` — declarative invariant checks
  (success on solvable settings, honest agreement, verdict/record
  consistency, cross-runtime byte-identity) with structured
  :class:`Violation` reports and a registry tests can extend;
* :mod:`repro.conform.search` — an adversary strategy enumerator that
  composes the :mod:`repro.adversary.mutators` primitives and greedily
  explores the strategy space for oracle violations;
* :mod:`repro.conform.shrink` — counterexample minimization: fewer
  parties, smaller budgets, simpler lies, until the violation is
  1-minimal;
* :mod:`repro.conform.harness` — ties it together:
  :func:`run_conformance` produces a deterministic
  :class:`ConformanceReport` plus self-contained :class:`ReproFile`
  artifacts that ``repro conform replay`` re-judges.
"""

from repro.conform.generators import (
    EnsembleConfig,
    chaos_mutator,
    generate_scenarios,
    scenario_stream,
)
from repro.conform.harness import (
    ConformanceReport,
    ReproFile,
    replay_repro,
    run_conformance,
)
from repro.conform.oracles import (
    ORACLES,
    Oracle,
    OracleContext,
    Violation,
    default_oracle_names,
    differential_sweep,
    register_oracle,
    resolve_oracles,
    unregister_oracle,
)
from repro.conform.search import (
    SearchResult,
    Strategy,
    enumerate_strategies,
    search_adversaries,
)
from repro.conform.shrink import ShrinkResult, shrink

__all__ = [
    "EnsembleConfig",
    "generate_scenarios",
    "scenario_stream",
    "chaos_mutator",
    "Oracle",
    "OracleContext",
    "Violation",
    "ORACLES",
    "register_oracle",
    "unregister_oracle",
    "resolve_oracles",
    "default_oracle_names",
    "differential_sweep",
    "Strategy",
    "SearchResult",
    "enumerate_strategies",
    "search_adversaries",
    "ShrinkResult",
    "shrink",
    "ReproFile",
    "ConformanceReport",
    "run_conformance",
    "replay_repro",
]
