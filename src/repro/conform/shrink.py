"""Counterexample shrinking: from a violating scenario to a minimal one.

Given a spec on which an oracle reports violations, :func:`shrink`
greedily applies reductions — drop the adversary, drop link faults,
shed corrupted parties, lower the corruption budgets, shrink the side
size, simplify the equivocation mutator, simplify the profile — keeping
a reduction whenever the *same oracle* still fires on the reduced spec,
until no reduction survives.  The result is 1-minimal: undoing any
single kept reduction makes the violation disappear (or the spec
invalid).

Every re-check routes through the shared :class:`OracleContext`, so
repeated probing of the same candidate costs one execution.  Reductions
that produce an unconstructible spec (or crash the runner) are treated
as not-reproducing and skipped — shrinking never raises on a weird
intermediate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.conform.oracles import Oracle, OracleContext, Violation
from repro.errors import ReproError
from repro.experiment.spec import BUDGET, ProfileSpec, ScenarioSpec

__all__ = ["ShrinkResult", "shrink"]


@dataclass(frozen=True)
class ShrinkResult:
    """A minimized spec plus the trail that led there."""

    spec: ScenarioSpec
    violations: tuple[Violation, ...]
    steps: int
    trail: tuple[str, ...]


def _with_explicit_corrupt(spec: ScenarioSpec) -> ScenarioSpec:
    """The same spec with the ``"budget"`` sentinel spelled out, so
    per-party reductions have names to drop."""
    adversary = spec.adversary
    if adversary is None or adversary.corrupt != BUDGET or spec.family != "bsm":
        return spec
    corrupt = tuple(str(p) for p in adversary.corrupted_parties(spec.setting()))
    return replace(spec, adversary=replace(adversary, corrupt=corrupt))


def _candidates(spec: ScenarioSpec) -> Iterator[tuple[str, ScenarioSpec]]:
    """Reduction candidates, most aggressive first.

    Yields ``(description, reduced_spec)`` pairs.  Reductions that
    violate spec invariants (``replace`` re-runs ``__post_init__``) are
    silently unavailable rather than errors — a shrinking step may not
    apply to every shape.
    """
    built: list[tuple[str, ScenarioSpec]] = []

    def attempt(description: str, build) -> None:
        try:
            built.append((description, build()))
        except ReproError:
            pass

    adversary = spec.adversary
    # 1. Drop the adversary wholesale.
    if adversary is not None:
        attempt("drop adversary", lambda: replace(spec, adversary=None))
    # 2. Drop link faults.
    if adversary is not None and adversary.link is not None:
        attempt(
            "drop link faults",
            lambda: replace(spec, adversary=replace(adversary, link=None)),
        )
    if spec.family == "bsm":
        # 3. Shrink the side size (corrupted names above the new k vanish).
        if spec.k > 1:
            k = spec.k - 1

            def shrunk_k() -> ScenarioSpec:
                reduced_adversary = adversary
                if adversary is not None and adversary.corrupt != BUDGET:
                    kept = tuple(p for p in adversary.corrupt if int(p[1:]) < k)
                    reduced_adversary = replace(adversary, corrupt=kept)
                return replace(
                    spec,
                    k=k,
                    tL=min(spec.tL, k),
                    tR=min(spec.tR, k),
                    adversary=reduced_adversary,
                )

            attempt(f"shrink k to {k}", shrunk_k)
        # 4. Lower the corruption budgets.
        if spec.tL > 0:
            attempt(f"lower tL to {spec.tL - 1}", lambda: replace(spec, tL=spec.tL - 1))
        if spec.tR > 0:
            attempt(f"lower tR to {spec.tR - 1}", lambda: replace(spec, tR=spec.tR - 1))
    # 5. Shed corrupted parties one at a time.
    if adversary is not None and adversary.corrupt != BUDGET and len(adversary.corrupt) > 0:
        for party in adversary.corrupt:
            kept = tuple(p for p in adversary.corrupt if p != party)
            attempt(
                f"uncorrupt {party}",
                lambda kept=kept: replace(spec, adversary=replace(adversary, corrupt=kept)),
            )
    # 6. Simplify a composed mutator, one primitive at a time.
    if adversary is not None and adversary.mutator and "+" in adversary.mutator:
        parts = adversary.mutator.split("+")
        for index in range(len(parts)):
            kept_name = "+".join(parts[:index] + parts[index + 1 :])
            attempt(
                f"drop mutator {parts[index]}",
                lambda kept_name=kept_name: replace(
                    spec, adversary=replace(adversary, mutator=kept_name)
                ),
            )
    # 7. Earlier crashes are simpler stories.
    if adversary is not None and adversary.kind == "crash" and adversary.crash_round > 0:
        attempt(
            f"crash earlier ({adversary.crash_round - 1})",
            lambda: replace(
                spec, adversary=replace(adversary, crash_round=adversary.crash_round - 1)
            ),
        )
    # 8. Simplify the profile: plain random, then seed zero.
    if spec.profile.kind != "random" and spec.family != "roommates":
        attempt(
            "simplify profile to random",
            lambda: replace(spec, profile=ProfileSpec(kind="random", seed=spec.profile.seed)),
        )
    if spec.profile.lists is None and spec.profile.seed != 0:
        attempt(
            "zero profile seed",
            lambda: replace(spec, profile=replace(spec.profile, seed=0)),
        )
    yield from built


def _reproduces(
    spec: ScenarioSpec, oracle: Oracle, ctx: OracleContext
) -> tuple[Violation, ...]:
    """The oracle's violations on ``spec`` (empty when out of scope or
    when the candidate cannot even execute)."""
    try:
        if not oracle.applies(spec):
            return ()
        return oracle.check(spec, ctx)
    except ReproError:
        return ()


def shrink(
    spec: ScenarioSpec,
    oracle: Oracle,
    ctx: OracleContext | None = None,
    *,
    max_steps: int = 64,
) -> ShrinkResult:
    """Greedily minimize ``spec`` while ``oracle`` keeps firing on it.

    ``max_steps`` bounds accepted reductions (each accepted reduction
    restarts the candidate scan, so the bound also caps total work).
    The original spec must violate the oracle; if it does not, the
    result is the original spec with zero steps and no violations.
    """
    ctx = ctx if ctx is not None else OracleContext()
    current = _with_explicit_corrupt(spec)
    violations = _reproduces(current, oracle, ctx)
    if not violations:
        # _with_explicit_corrupt is cosmetic, but don't return a rewrite
        # that does not reproduce when the original did.
        current, violations = spec, _reproduces(spec, oracle, ctx)
        if not violations:
            return ShrinkResult(spec=spec, violations=(), steps=0, trail=())
    trail: list[str] = []
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for description, candidate in _candidates(current):
            reduced_violations = _reproduces(candidate, oracle, ctx)
            if reduced_violations:
                current = candidate
                violations = reduced_violations
                trail.append(description)
                steps += 1
                progress = True
                break
    return ShrinkResult(
        spec=current, violations=violations, steps=steps, trail=tuple(trail)
    )
