"""Seed-reproducible random scenario ensembles.

The Mertens / Ahlberg-et-al. lesson (PAPERS.md): random-instance
ensembles expose structure hand-picked instances miss.  This module
turns that into machinery — an :class:`EnsembleConfig` names the
dimensions of the scenario space (families, topologies, side sizes,
profile workloads, adversary behaviors, link-fault patterns, runtimes)
and :func:`generate_scenarios` draws a deterministic stream of
:class:`~repro.experiment.ScenarioSpec` values from it, so the whole
ensemble flows through the existing ``Session``/``Engine`` path and
can be replayed from ``(config, seed)`` alone.

Every generated spec is stamped with provenance ``tags``
(``("conform", "seed<seed>", "ix<i>")``) that the engine copies onto
its records, so a violating record found deep in a sweep ties back to
the exact ensemble coordinate that produced it.

:func:`chaos_mutator` (a seeded structural payload fuzzer) lives here
too: it is the non-serializable, maximal-aggression end of the mutation
spectrum, shared by the fuzz test-suite and ad-hoc probing.  Specs can
only carry the *named* mutators from :mod:`repro.adversary.mutators`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.adversary.mutators import MUTATORS
from repro.core.problem import Setting
from repro.core.solvability import cached_is_solvable
from repro.errors import ConformError
from repro.experiment.spec import AdversarySpec, LinkSpec, ProfileSpec, ScenarioSpec
from repro.net.topology import TOPOLOGY_NAMES

__all__ = [
    "EnsembleConfig",
    "generate_scenarios",
    "scenario_stream",
    "chaos_mutator",
]

#: Adversary kinds the generator draws from ("none" = fault-free run).
_ADVERSARY_DRAWS = ("none", "silent", "noise", "crash", "honest", "equivocate")


@dataclass(frozen=True)
class EnsembleConfig:
    """The dimensions of a generated scenario ensemble.

    Every field is a tuple of allowed draws; the generator samples
    uniformly (per-dimension) from them.  ``solvable_only=True``
    restricts bsm scenarios to budget points the oracle deems solvable
    — the regime where the paper promises success, and therefore where
    the success oracles have teeth.  ``link_probability`` is the chance
    a bsm scenario additionally carries channel faults.
    """

    families: tuple[str, ...] = ("bsm", "bsm", "bsm", "roommates", "offline")
    topologies: tuple[str, ...] = TOPOLOGY_NAMES
    auths: tuple[bool, ...] = (False, True)
    ks: tuple[int, ...] = (2, 3)
    profile_kinds: tuple[str, ...] = ("random", "correlated", "master_list")
    adversary_kinds: tuple[str, ...] = _ADVERSARY_DRAWS
    mutators: tuple[str, ...] = tuple(sorted(MUTATORS))
    link_kinds: tuple[str, ...] = ("random", "partition", "after_round")
    link_probability: float = 0.2
    runtimes: tuple[str, ...] = ("lockstep",)
    roommates_ns: tuple[int, ...] = (4, 6)
    solvable_only: bool = True

    def __post_init__(self) -> None:
        if not self.families:
            raise ConformError("ensemble configs need at least one family")
        for kind in self.adversary_kinds:
            if kind not in _ADVERSARY_DRAWS:
                raise ConformError(
                    f"unknown adversary draw {kind!r}; expected one of {_ADVERSARY_DRAWS}"
                )
        if not (0.0 <= self.link_probability <= 1.0):
            raise ConformError(
                f"link_probability must lie in [0, 1], got {self.link_probability}"
            )


def _solvable_budgets(topology: str, auth: bool, k: int) -> list[tuple[int, int]]:
    """Budget pairs the oracle accepts at this grid point (cached oracle)."""
    return [
        (tL, tR)
        for tL in range(k + 1)
        for tR in range(k + 1)
        if cached_is_solvable(Setting(topology, auth, k, tL, tR)).solvable
    ]


def _draw_profile(rng: random.Random, config: EnsembleConfig, kinds: Sequence[str]) -> ProfileSpec:
    kind = rng.choice(list(kinds))
    if kind == "correlated":
        return ProfileSpec(
            kind=kind,
            seed=rng.randrange(1 << 30),
            similarity=rng.choice((0.25, 0.5, 0.75)),
        )
    if kind == "incomplete_random":
        return ProfileSpec(
            kind=kind,
            seed=rng.randrange(1 << 30),
            acceptance=rng.choice((0.3, 0.5, 0.8)),
        )
    return ProfileSpec(kind=kind, seed=rng.randrange(1 << 30))


def _draw_adversary(
    rng: random.Random, config: EnsembleConfig, budgeted: bool, with_link: bool
) -> AdversarySpec | None:
    kind = rng.choice(list(config.adversary_kinds)) if budgeted else "none"
    link = None
    if with_link:
        link_kind = rng.choice(list(config.link_kinds))
        if link_kind == "random":
            link = LinkSpec(
                kind="random",
                probability=rng.choice((0.05, 0.15, 0.3)),
                seed=rng.randrange(1 << 30),
            )
        elif link_kind == "after_round":
            link = LinkSpec(kind="after_round", cutoff=rng.randrange(2, 8))
        else:
            link = LinkSpec(kind="partition")
    if kind == "none":
        if link is None:
            return None
        return AdversarySpec(kind="silent", corrupt=(), link=link)
    seed = rng.randrange(1 << 30)
    if kind == "crash":
        return AdversarySpec(
            kind=kind, seed=seed, link=link, crash_round=rng.randrange(1, 5)
        )
    if kind == "equivocate":
        return AdversarySpec(
            kind=kind, seed=seed, link=link, mutator=rng.choice(list(config.mutators))
        )
    return AdversarySpec(kind=kind, seed=seed, link=link)


def _draw_bsm(rng: random.Random, config: EnsembleConfig, tags: tuple[str, ...]) -> ScenarioSpec:
    topology = rng.choice(list(config.topologies))
    auth = rng.choice(list(config.auths))
    k = rng.choice(list(config.ks))
    if config.solvable_only:
        budgets = _solvable_budgets(topology, auth, k)
        tL, tR = rng.choice(budgets) if budgets else (0, 0)
    else:
        tL, tR = rng.randrange(k + 1), rng.randrange(k + 1)
    with_link = rng.random() < config.link_probability
    return ScenarioSpec(
        topology=topology,
        authenticated=auth,
        k=k,
        tL=tL,
        tR=tR,
        profile=_draw_profile(rng, config, config.profile_kinds),
        adversary=_draw_adversary(rng, config, budgeted=bool(tL or tR), with_link=with_link),
        runtime=rng.choice(list(config.runtimes)),
        tags=tags,
    )


def _draw_roommates(rng: random.Random, config: EnsembleConfig, tags: tuple[str, ...]) -> ScenarioSpec:
    n = rng.choice(list(config.roommates_ns))
    t = rng.choice((0, 1))
    return ScenarioSpec(
        family="roommates",
        n=n,
        t=t,
        authenticated=rng.choice(list(config.auths)),
        profile=ProfileSpec(seed=rng.randrange(1 << 30)),
        # The roommates runner currently supports only the silent kind.
        adversary=AdversarySpec(kind="silent") if t else None,
        tags=tags,
    )


def _draw_offline(rng: random.Random, config: EnsembleConfig, tags: tuple[str, ...]) -> ScenarioSpec:
    algorithm = rng.choice(("gale_shapley", "incomplete"))
    kinds = list(config.profile_kinds)
    if algorithm == "incomplete":
        kinds = kinds + ["incomplete_random"]
    return ScenarioSpec(
        family="offline",
        algorithm=algorithm,
        k=rng.choice(list(config.ks)),
        profile=_draw_profile(rng, config, kinds),
        tags=tags,
    )


def scenario_stream(
    config: EnsembleConfig, seed: int = 0
) -> Iterator[ScenarioSpec]:
    """An endless deterministic stream of scenarios from ``(config, seed)``.

    The stream is a pure function of its arguments: the same prefix is
    drawn every time, so ``generate_scenarios(config, seed, n)`` equals
    the first ``n`` items for every ``n``.
    """
    # A string seed hashes deterministically across processes (tuple
    # seeds would go through PYTHONHASHSEED-salted hash()).
    rng = random.Random(f"repro.conform:{seed}")
    index = 0
    while True:
        tags = ("conform", f"seed{seed}", f"ix{index}")
        family = rng.choice(list(config.families))
        if family == "roommates":
            yield _draw_roommates(rng, config, tags)
        elif family == "offline":
            yield _draw_offline(rng, config, tags)
        else:
            yield _draw_bsm(rng, config, tags)
        index += 1


def generate_scenarios(
    config: EnsembleConfig | None = None, seed: int = 0, count: int = 100
) -> tuple[ScenarioSpec, ...]:
    """The first ``count`` scenarios of the ``(config, seed)`` stream."""
    if count < 0:
        raise ConformError(f"scenario count must be >= 0, got {count}")
    stream = scenario_stream(config if config is not None else EnsembleConfig(), seed)
    return tuple(next(stream) for _ in range(count))


def chaos_mutator(seed: int, aggressiveness: float = 0.4):
    """A seeded structural payload mutator (the fuzzing workhorse).

    Byzantine parties running the honest protocol pass every outgoing
    payload through this: it may drop the message, replace values,
    shuffle tuple fields, or rewrite structure — malformed-but-plausible
    messages that reach the parsers' deep branches.  Deterministic per
    seed, but *not* serializable by name: specs use the canned mutators
    from :mod:`repro.adversary.mutators` instead.
    """
    rng = random.Random(seed)

    def mutate_value(value, depth=0):
        roll = rng.random()
        if roll < 0.25:
            return rng.randrange(100)
        if roll < 0.45:
            return "fuzz"
        if roll < 0.6:
            return None
        if roll < 0.8 and isinstance(value, tuple) and value:
            items = list(value)
            rng.shuffle(items)
            return tuple(items)
        if isinstance(value, tuple) and depth < 3:
            return tuple(mutate_value(item, depth + 1) for item in value)
        return value

    def mutate(round_now, dst, payload):
        roll = rng.random()
        if roll > aggressiveness:
            return payload  # pass through: stay plausible most of the time
        if roll < aggressiveness * 0.2:
            return None  # drop
        return mutate_value(payload)

    return mutate
