"""The ``repro conform`` subcommand: run / replay / report / search.

* ``repro conform run --seed 0 --budget 100`` — draw a seeded scenario
  ensemble, evaluate every oracle, shrink violations into repro files
  (``--repro-dir``), optionally archive the deterministic report JSON
  (``--out``).  Exit 0 = all oracles green, 1 = violations found.
* ``repro conform replay FILE`` — re-execute a repro file's shrunk
  scenario and re-evaluate its oracle.  Exit 0 = violation reproduced,
  1 = not reproduced (fixed, or flaky), 2 = malformed file.
* ``repro conform report FILE`` — print a previously archived report.
* ``repro conform search`` — adversary strategy search over a small
  generated ensemble: enumerate and greedily compose mutator
  primitives, reporting the best-scoring strategy per scenario.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConformError, ReproError

__all__ = ["add_conform_arguments", "cmd_conform"]


def add_conform_arguments(conform: argparse.ArgumentParser) -> None:
    """Attach the conform sub-subcommands to an (already created) subparser."""
    sub = conform.add_subparsers(dest="conform_command", required=True)

    run = sub.add_parser("run", help="run a seeded conformance ensemble")
    run.add_argument("--seed", type=int, default=0, help="ensemble seed")
    run.add_argument(
        "--budget", type=int, default=100, metavar="N",
        help="ensemble size (scenario count; deterministic per seed)",
    )
    run.add_argument(
        "--oracles", nargs="*", default=None, metavar="NAME",
        help="oracle names to evaluate (default: all built-ins)",
    )
    run.add_argument(
        "--out", default=None, metavar="PATH",
        help="archive the (deterministic) report JSON here",
    )
    run.add_argument(
        "--repro-dir", default="conform-repros", metavar="DIR",
        help="write shrunk violation repro files here (default: conform-repros)",
    )
    run.add_argument(
        "--no-shrink", action="store_true",
        help="capture violations without minimizing them",
    )

    replay = sub.add_parser("replay", help="re-check a violation repro file")
    replay.add_argument("file", metavar="REPRO", help="a repro_<oracle>_<n>.json file")

    report = sub.add_parser("report", help="print an archived conformance report")
    report.add_argument("file", metavar="REPORT", help="a report JSON from `conform run --out`")

    search = sub.add_parser("search", help="adversary strategy search for violations")
    search.add_argument("--seed", type=int, default=0, help="ensemble seed")
    search.add_argument(
        "--budget", type=int, default=5, metavar="N",
        help="number of base scenarios to search from",
    )
    search.add_argument(
        "--depth", type=int, default=2, metavar="D",
        help="maximum composed mutator primitives per strategy",
    )


def _cmd_run(args) -> int:
    from repro.conform.harness import run_conformance

    if args.budget < 0:
        print(f"error: --budget must be >= 0, got {args.budget}", file=sys.stderr)
        return 2
    try:
        report = run_conformance(
            seed=args.seed,
            budget=args.budget,
            oracles=args.oracles,
            shrink_violations=not args.no_shrink,
            repro_dir=args.repro_dir,
        )
    except ConformError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot write repro files to {args.repro_dir}: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    for violation in report.violations:
        print(f"  VIOLATION [{violation.oracle}] {violation.scenario}: {violation.message}")
    if report.repro_paths:
        print(f"{len(report.repro_paths)} repro file(s) written to {args.repro_dir}:")
        for name in report.repro_paths:
            print(f"  {name}")
    if args.out:
        from repro.io import dump

        try:
            dump(report, args.out)
        except OSError as exc:
            print(f"error: cannot write report to {args.out}: {exc}", file=sys.stderr)
            return 2
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


def _cmd_replay(args) -> int:
    from repro.conform.harness import replay_repro
    from repro.io import load

    try:
        repro = load(args.file, format="conform-repro")
    except (OSError, ConformError) as exc:
        print(f"error: cannot load repro file {args.file}: {exc}", file=sys.stderr)
        return 2
    try:
        reproduced, violations = replay_repro(repro)
    except ConformError as exc:
        print(f"error: cannot replay {args.file}: {exc}", file=sys.stderr)
        return 2
    print(f"repro [{repro.oracle}] {repro.spec.label()} (shrunk in {repro.shrink_steps} steps)")
    if reproduced:
        print("REPRODUCED:")
        for violation in violations:
            print(f"  [{violation.oracle}] {violation.scenario}: {violation.message}")
        return 0
    print("not reproduced (fixed, or the recorded oracle no longer fires)")
    return 1


def _cmd_report(args) -> int:
    from repro.io import load

    try:
        report = load(args.file, format="conform-report")
    except (OSError, ConformError) as exc:
        print(f"error: cannot load report {args.file}: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    by_oracle: dict[str, int] = {name: 0 for name in report.oracle_names}
    for violation in report.violations:
        by_oracle[violation.oracle] = by_oracle.get(violation.oracle, 0) + 1
    for name in sorted(by_oracle):
        status = "ok" if not by_oracle[name] else f"{by_oracle[name]} violation(s)"
        print(f"  {name:24s} {status}")
    for violation in report.violations:
        print(f"  VIOLATION [{violation.oracle}] {violation.scenario}: {violation.message}")
    if report.repro_paths:
        print("repro files: " + ", ".join(report.repro_paths))
    return 0 if report.ok else 1


def _cmd_search(args) -> int:
    from repro.conform.generators import EnsembleConfig, scenario_stream
    from repro.conform.oracles import OracleContext
    from repro.conform.search import search_adversaries

    # Budgeted, lossless bsm scenarios only: search varies the behavior
    # axis, so the base ensemble keeps the channel clean.
    config = EnsembleConfig(families=("bsm",), link_probability=0.0)
    ctx = OracleContext()
    stream = scenario_stream(config, seed=args.seed)
    searched = 0
    worst_score = 0
    try:
        for _ in range(max(0, args.budget) * 20):
            if searched >= args.budget:
                break
            spec = next(stream)
            if not (spec.tL or spec.tR):
                continue
            result = search_adversaries(spec, ctx=ctx, max_depth=args.depth)
            searched += 1
            print(result.summary())
            worst_score = max(worst_score, result.score)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"searched {searched} scenario(s): "
        + ("no oracle violations found" if not worst_score else "VIOLATIONS FOUND")
    )
    return 0 if not worst_score else 1


def cmd_conform(args) -> int:
    """The ``repro conform`` handler (see the module docstring for exit codes)."""
    handlers = {
        "run": _cmd_run,
        "replay": _cmd_replay,
        "report": _cmd_report,
        "search": _cmd_search,
    }
    return handlers[args.conform_command](args)
