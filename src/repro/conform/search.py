"""Adversary strategy search: explore the behavior space, hunting violations.

A :class:`Strategy` is a serializable adversary description — a
behavior kind plus its knobs, where equivocation strategies name a
``+``-composition of the :mod:`repro.adversary.mutators` primitives
(equivocate, withhold, reorder, targeted lies).  :func:`enumerate_strategies`
lists the depth-1 space; :func:`search_adversaries` evaluates every
base strategy against a scenario under a set of oracles, then
*greedily composes* the best equivocation strategy with further
primitives as long as the violation count improves.

On a correct implementation the search comes back empty-handed
(``score == 0`` everywhere) — that is the point: the strategies it
enumerates are exactly the ones future protocol changes must keep
surviving, and when one day a change breaks a guarantee, the search
returns the spec that proves it, ready for
:func:`repro.conform.shrink.shrink`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.adversary.mutators import MUTATORS
from repro.conform.oracles import Oracle, OracleContext, Violation, resolve_oracles
from repro.errors import ConformError
from repro.experiment.spec import BUDGET, AdversarySpec, ScenarioSpec

__all__ = ["Strategy", "SearchResult", "enumerate_strategies", "search_adversaries"]

#: Mutator primitives the composer draws from, in deterministic order.
PRIMITIVES: tuple[str, ...] = tuple(sorted(MUTATORS))


@dataclass(frozen=True)
class Strategy:
    """One serializable adversary strategy."""

    kind: str
    mutator: str | None = None
    crash_round: int = 2

    def describe(self) -> str:
        if self.kind == "equivocate":
            return f"equivocate[{self.mutator}]"
        if self.kind == "crash":
            return f"crash@{self.crash_round}"
        return self.kind

    def adversary_spec(
        self, corrupt: str | tuple[str, ...] = BUDGET, seed: int = 0
    ) -> AdversarySpec:
        return AdversarySpec(
            kind=self.kind,
            corrupt=corrupt,
            seed=seed,
            crash_round=self.crash_round,
            mutator=self.mutator if self.kind == "equivocate" else None,
        )

    def extended(self, primitive: str) -> "Strategy":
        """This equivocation strategy with one more composed primitive."""
        if self.kind != "equivocate":
            raise ConformError(f"only equivocation strategies compose, not {self.kind!r}")
        return replace(self, mutator=f"{self.mutator}+{primitive}")


@dataclass(frozen=True)
class SearchResult:
    """What the search found (``score == 0`` means nothing broke)."""

    spec: ScenarioSpec
    strategy: Strategy
    score: int
    violations: tuple[Violation, ...]
    tried: tuple[tuple[str, int], ...]

    def summary(self) -> str:
        verdict = (
            f"{self.score} violation(s) via {self.strategy.describe()}"
            if self.score
            else f"no violations across {len(self.tried)} strategies"
        )
        return f"search[{self.spec.label()}]: {verdict}"


def enumerate_strategies(mutators: Sequence[str] = PRIMITIVES) -> tuple[Strategy, ...]:
    """The depth-1 strategy space: canned behaviors + every primitive lie."""
    canned = (
        Strategy(kind="silent"),
        Strategy(kind="crash", crash_round=1),
        Strategy(kind="crash", crash_round=3),
        Strategy(kind="honest"),
    )
    return canned + tuple(Strategy(kind="equivocate", mutator=m) for m in mutators)


def _apply(spec: ScenarioSpec, strategy: Strategy) -> ScenarioSpec:
    """``spec`` with its adversary replaced by ``strategy``'s.

    Keeps the corruption set (and link faults) of the original adversary
    when present, so the search varies *behavior*, not budget.
    """
    base = spec.adversary
    corrupt: str | tuple[str, ...] = base.corrupt if base is not None else BUDGET
    seed = base.seed if base is not None else spec.profile.seed
    adversary = strategy.adversary_spec(corrupt=corrupt, seed=seed)
    if base is not None and base.link is not None:
        adversary = replace(adversary, link=base.link)
    return replace(spec, adversary=adversary)


def _score(
    spec: ScenarioSpec, oracles: Sequence[Oracle], ctx: OracleContext
) -> tuple[int, tuple[Violation, ...]]:
    violations: list[Violation] = []
    for oracle in oracles:
        if oracle.applies(spec):
            violations.extend(oracle.check(spec, ctx))
    return len(violations), tuple(violations)


def search_adversaries(
    spec: ScenarioSpec,
    oracles: Sequence[Oracle] | Sequence[str] | None = None,
    ctx: OracleContext | None = None,
    *,
    mutators: Sequence[str] = PRIMITIVES,
    max_depth: int = 3,
) -> SearchResult:
    """Greedy strategy search over one scenario.

    Phase 1 scores every depth-1 strategy; phase 2 takes the best
    equivocation strategy and composes one more primitive per pass —
    the best strictly-improving one — until no extension improves or
    the composition reaches ``max_depth`` primitives.  The search is
    deterministic: strategies are enumerated in a fixed order and ties
    keep the earlier strategy.  With no ``mutators`` the equivocation
    phase is skipped and the best canned strategy is returned.
    """
    if spec.family != "bsm":
        raise ConformError(f"adversary search needs a bsm spec, got {spec.family!r}")
    if not (spec.tL or spec.tR):
        raise ConformError("adversary search needs a corruption budget (tL+tR > 0)")
    resolved: Sequence[Oracle]
    if oracles is None or (oracles and isinstance(oracles[0], str)):
        resolved = resolve_oracles(oracles)  # type: ignore[arg-type]
    else:
        resolved = tuple(oracles)  # type: ignore[assignment]
    ctx = ctx if ctx is not None else OracleContext()

    tried: list[tuple[str, int]] = []
    best: tuple[int, Strategy, ScenarioSpec, tuple[Violation, ...]] | None = None
    best_equivocation: tuple[int, Strategy] | None = None
    for strategy in enumerate_strategies(mutators):
        candidate = _apply(spec, strategy)
        score, violations = _score(candidate, resolved, ctx)
        tried.append((strategy.describe(), score))
        if best is None or score > best[0]:
            best = (score, strategy, candidate, violations)
        if strategy.kind == "equivocate" and (
            best_equivocation is None or score > best_equivocation[0]
        ):
            best_equivocation = (score, strategy)

    if best is None:
        raise ConformError("strategy enumeration came back empty")
    if best_equivocation is not None:
        score, strategy = best_equivocation
        # One accepted primitive per pass keeps the composition within
        # max_depth primitives total (the base mutator counts as one).
        for _ in range(max_depth - 1):
            pass_best: tuple[int, Strategy, ScenarioSpec, tuple[Violation, ...]] | None = None
            for primitive in mutators:
                candidate_strategy = strategy.extended(primitive)
                candidate = _apply(spec, candidate_strategy)
                candidate_score, violations = _score(candidate, resolved, ctx)
                tried.append((candidate_strategy.describe(), candidate_score))
                if candidate_score > score and (
                    pass_best is None or candidate_score > pass_best[0]
                ):
                    pass_best = (candidate_score, candidate_strategy, candidate, violations)
            if pass_best is None:
                break
            score, strategy = pass_best[0], pass_best[1]
            if pass_best[0] > best[0]:
                best = pass_best

    return SearchResult(
        spec=best[2],
        strategy=best[1],
        score=best[0],
        violations=best[3],
        tried=tuple(tried),
    )
