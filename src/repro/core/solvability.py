"""The paper's characterization, as an executable oracle (Theorems 2-7).

``is_solvable(setting)`` returns whether bSM is solvable in the
setting, which theorem says so, why, and — when solvable — which of the
library's protocol recipes realizes it:

* ``"bb_direct"`` — Lemma 1 over direct links (Theorems 2, 5);
* ``"bb_majority_relay"`` — Lemma 1 over the Lemma 6 relay
  (Theorems 3, 4);
* ``"bb_signed_relay"`` — Lemma 1 over the Lemma 8 relay
  (Theorems 6(i), 7);
* ``"pi_bsm"`` / ``"pi_bsm_mirrored"`` — Section 5.2's ``PiBSM`` with
  the computing side ``L`` resp. ``R`` (Theorem 6(ii), Lemma 9).

All threshold comparisons are the paper's strict fractions, evaluated
exactly over integers (``tL < k/3`` is ``3*tL < k``).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass

from repro.core.problem import Setting

__all__ = [
    "SolvabilityVerdict",
    "is_solvable",
    "cached_is_solvable",
    "solvability_cache_stats",
    "RECIPES",
]

RECIPES = (
    "bb_direct",
    "bb_majority_relay",
    "bb_signed_relay",
    "pi_bsm",
    "pi_bsm_mirrored",
)


@dataclass(frozen=True)
class SolvabilityVerdict:
    """The oracle's answer for one setting."""

    solvable: bool
    theorem: str
    reason: str
    recipe: str | None = None

    def __post_init__(self) -> None:
        if self.solvable and self.recipe not in RECIPES:
            raise ValueError(f"solvable verdicts need a recipe, got {self.recipe!r}")
        if not self.solvable and self.recipe is not None:
            raise ValueError("unsolvable verdicts carry no recipe")


def _q3(k: int, tL: int, tR: int) -> bool:
    return 3 * tL < k or 3 * tR < k


def is_solvable(setting: Setting) -> SolvabilityVerdict:
    """Decide the setting per the paper's tight conditions."""
    k, tL, tR = setting.k, setting.tL, setting.tR
    topology = setting.topology_name

    if setting.authenticated:
        if topology == "fully_connected":
            return SolvabilityVerdict(
                solvable=True,
                theorem="Theorem 5",
                reason="authenticated fully-connected: Dolev-Strong BB for any t < n",
                recipe="bb_direct",
            )
        if topology == "one_sided":
            if tR < k:
                return SolvabilityVerdict(
                    solvable=True,
                    theorem="Theorem 7",
                    reason="tR < k: signed relay (Corollary 3) reduces to Theorem 5",
                    recipe="bb_signed_relay",
                )
            if 3 * tL < k:
                return SolvabilityVerdict(
                    solvable=True,
                    theorem="Theorem 7",
                    reason="tR = k but tL < k/3: PiBSM (one-sided is stronger than bipartite)",
                    recipe="pi_bsm",
                )
            return SolvabilityVerdict(
                solvable=False,
                theorem="Theorem 7 / Lemma 13",
                reason="tR = k and tL >= k/3: the two-group simulation attack applies",
            )
        # bipartite authenticated
        if tL < k and tR < k:
            return SolvabilityVerdict(
                solvable=True,
                theorem="Theorem 6",
                reason="tL, tR < k: signed relays both ways (Corollary 4) reduce to Theorem 5",
                recipe="bb_signed_relay",
            )
        if 3 * tL < k:
            return SolvabilityVerdict(
                solvable=True,
                theorem="Theorem 6 / Lemma 9",
                reason="tL < k/3 (R may be fully byzantine): PiBSM",
                recipe="pi_bsm",
            )
        if 3 * tR < k:
            return SolvabilityVerdict(
                solvable=True,
                theorem="Theorem 6 / Lemma 9",
                reason="tR < k/3 (L may be fully byzantine): mirrored PiBSM",
                recipe="pi_bsm_mirrored",
            )
        return SolvabilityVerdict(
            solvable=False,
            theorem="Theorem 6 / Corollary 5",
            reason="one side fully corruptible and the other >= k/3",
        )

    # Unauthenticated settings.
    if not _q3(k, tL, tR):
        return SolvabilityVerdict(
            solvable=False,
            theorem="Theorem 2 / Lemma 5",
            reason="tL >= k/3 and tR >= k/3: Q3 fails, the duplication attack applies",
        )
    if topology == "fully_connected":
        return SolvabilityVerdict(
            solvable=True,
            theorem="Theorem 2",
            reason="Q3 holds: general-adversary BB (Lemma 4) + Lemma 1",
            recipe="bb_direct",
        )
    if topology == "one_sided":
        if 2 * tR < k:
            return SolvabilityVerdict(
                solvable=True,
                theorem="Theorem 4",
                reason="tR < k/2: majority relay for L (Corollary 1) reduces to Theorem 2",
                recipe="bb_majority_relay",
            )
        return SolvabilityVerdict(
            solvable=False,
            theorem="Theorem 4 / Lemma 7",
            reason="tR >= k/2: the cycle-duplication attack applies",
        )
    # bipartite unauthenticated
    if 2 * tL < k and 2 * tR < k:
        return SolvabilityVerdict(
            solvable=True,
            theorem="Theorem 3",
            reason="tL, tR < k/2: majority relays both ways (Corollary 2) reduce to Theorem 2",
            recipe="bb_majority_relay",
        )
    return SolvabilityVerdict(
        solvable=False,
        theorem="Theorem 3 / Lemma 7",
        reason="a side with >= k/2 corruptions cuts the majority relay",
    )


#: ``cache_info()`` result — the ``lru_cache`` field names, so callers
#: that introspect the memo (tests, stats) see the familiar shape.
_CacheInfo = collections.namedtuple("CacheInfo", "hits misses maxsize currsize")


class _SolvabilityMemo:
    """Unbounded verdict memo with export/prime hooks for the disk layer.

    Drop-in for the historical ``functools.lru_cache(maxsize=None)``
    wrapper (``cache_info``/``cache_clear`` keep their shapes), plus
    :meth:`export_entries`/:meth:`prime` so
    :mod:`repro.runtime.diskcache` can persist verdicts across
    processes.  Priming is sound because verdicts are pure functions of
    the (hashable, frozen) setting — a primed entry is byte-for-byte
    what recomputing it would produce, guarded upstream by the disk
    layer's code-fingerprint versioning.
    """

    __slots__ = ("_fn", "_entries", "_hits", "_misses")

    def __init__(self, fn) -> None:
        self._fn = fn
        self._entries: dict = {}
        self._hits = 0
        self._misses = 0

    def __call__(self, setting: Setting) -> SolvabilityVerdict:
        verdict = self._entries.get(setting)
        if verdict is None:
            self._misses += 1
            verdict = self._fn(setting)
            self._entries[setting] = verdict
        else:
            self._hits += 1
        return verdict

    def cache_info(self) -> _CacheInfo:
        return _CacheInfo(self._hits, self._misses, None, len(self._entries))

    def cache_clear(self) -> None:
        self._entries.clear()
        self._hits = 0
        self._misses = 0

    def export_entries(self) -> tuple:
        """Picklable ``(setting, verdict)`` pairs, insertion-ordered."""
        return tuple(self._entries.items())

    def prime(self, entries) -> None:
        """Pre-seed from :meth:`export_entries` pairs (existing entries win)."""
        for setting, verdict in entries:
            self._entries.setdefault(setting, verdict)


#: The oracle, memoized process-wide.  Verdicts are pure functions of
#: the (hashable, frozen) setting, and every layer that walks the
#: characterization grid — sweep expansion, the frontier preset, the
#: engine, the bench harness — shares this one memo instead of each
#: re-deriving the same few hundred verdicts per batch.  Unbounded on
#: purpose: a bounded LRU silently thrashes on scale-tier grids (a
#: single k=64 sweep already touches 4225 settings × several
#: topology/auth combinations), and verdicts are tiny frozen
#: dataclasses.  Hit/miss counters surface through
#: ``ExecutionCache.stats()`` as the ``solvability`` family.
cached_is_solvable = _SolvabilityMemo(is_solvable)


def solvability_cache_stats() -> dict[str, int]:
    """Hit/miss/entry counters of the process-wide verdict memo.

    Shaped like the runtime memo families so ``cache_stats`` merging
    can treat it uniformly: ``{"entries", "hits", "misses"}``.
    """
    info = cached_is_solvable.cache_info()
    return {"entries": info.currsize, "hits": info.hits, "misses": info.misses}
