"""The generic BB-based bSM protocol (Lemma 1).

"A BB protocol allows the sender to disseminate its preferences so
that all parties obtain identical views of them. ... This enables them
to run AG-S offline and obtain the same stable matching, thereby
solving bSM."

Every party broadcasts its preference list (one BB instance per party,
all ``2k`` in parallel), substitutes the default list for any party
whose broadcast did not yield a valid list, runs the deterministic
``AG-S`` locally, and outputs its own match.

The BB engine and the transport vary by setting:

* authenticated — Dolev-Strong (``t < n``), Theorem 5;
* unauthenticated — general-adversary phase king (Q3), Lemma 4;
* fully-connected — direct links; one-sided / bipartite — the majority
  (Lemma 6) or signed (Lemma 8) relays at ``delta = 2``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.consensus.dolev_strong import DolevStrongBB
from repro.consensus.general_adversary import GeneralAdversaryBB
from repro.core.problem import Setting
from repro.core.relays import MajorityRelayLink, SignedRelayLink
from repro.errors import SolvabilityError
from repro.ids import LEFT, PartyId, all_parties
from repro.matching.gale_shapley import gale_shapley
from repro.matching.preferences import (
    PreferenceList,
    PreferenceProfile,
    default_list,
    is_valid_list,
)
from repro.net.mux import Mux
from repro.net.process import Envelope, Process
from repro.net.topology import Topology
from repro.net.transports import DirectLink, TransportProcess

__all__ = ["BBCollectionProtocol", "make_bb_based_party", "bb_engine_for"]


class BBCollectionProtocol(Process):
    """Upper half of Lemma 1: broadcast, collect, match, decide.

    Runs over a (possibly relayed) virtual fully-connected network.
    """

    def __init__(
        self,
        me: PartyId,
        k: int,
        my_list: PreferenceList,
        bb_factory: Callable[[PartyId, object], Process],
    ) -> None:
        self.me = me
        self.k = k
        self.my_list = tuple(my_list)
        self.bb_factory = bb_factory
        self.mux = Mux()
        self._started = False

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        if not self._started:
            self._started = True
            for sender in all_parties(self.k):
                value = self.my_list if sender == self.me else None
                self.mux.add(("bb", sender), self.bb_factory(sender, value))
        self.mux.step(ctx, inbox)
        if self.mux.all_done() and not ctx.has_output:
            self._decide(ctx)

    def _decide(self, ctx) -> None:
        lists: dict[PartyId, PreferenceList] = {}
        for sender in all_parties(self.k):
            value = self.mux.output_of(("bb", sender))
            if is_valid_list(sender, value, self.k):
                lists[sender] = tuple(value)
            else:
                # The sender is necessarily byzantine: substitute the
                # canonical default list (Lemma 1).
                lists[sender] = default_list(sender, self.k)
        profile = PreferenceProfile(k=self.k, lists=lists)
        matching = gale_shapley(profile, proposer_side=LEFT).matching
        ctx.output(matching.partner(self.me))
        ctx.halt()


def bb_engine_for(
    setting: Setting, force: bool = False
) -> Callable[[PartyId, PartyId, object], Process]:
    """The BB instance factory for a setting: ``(me, sender, value) -> Process``.

    Authenticated settings use Dolev-Strong with ``t = tL + tR`` (capped
    at ``n - 1``); unauthenticated settings use the general-adversary
    phase king over the product structure, which requires Q3 — pass
    ``force=True`` to build the protocol outside its domain (attack
    demonstrations run exactly such configurations).
    """
    group = all_parties(setting.k)
    if setting.authenticated:
        t = min(setting.tL + setting.tR, len(group) - 1)

        def make_auth(me: PartyId, sender: PartyId, value: object) -> Process:
            return DolevStrongBB(sender=sender, group=group, t=t, value=value)

        return make_auth

    structure = setting.structure()
    if not structure.satisfies_q3() and not force:
        raise SolvabilityError(
            f"unauthenticated BB needs Q3 (tL < k/3 or tR < k/3); {setting.describe()}"
        )

    def make_unauth(me: PartyId, sender: PartyId, value: object) -> Process:
        return GeneralAdversaryBB(sender=sender, group=group, structure=structure, value=value)

    return make_unauth


def make_bb_based_party(
    me: PartyId,
    setting: Setting,
    my_list: PreferenceList,
    topology: Topology | None = None,
    force: bool = False,
) -> Process:
    """Assemble the full Lemma 1 party process for ``me`` in ``setting``.

    Picks the transport (direct / majority relay / signed relay) and the
    BB engine mandated by the setting's theorem.  ``force=True`` builds
    the protocol even outside its solvability conditions (attack demos).
    """
    topo = topology if topology is not None else setting.topology()
    group = all_parties(setting.k)

    if setting.topology_name == "fully_connected":
        link = DirectLink(me, group)
    elif setting.authenticated:
        link = SignedRelayLink(me, topo, group)
    else:
        link = MajorityRelayLink(me, topo, group)

    engine = bb_engine_for(setting, force=force)

    def bb_factory(sender: PartyId, value: object) -> Process:
        return engine(me, sender, value)

    upper = BBCollectionProtocol(me, setting.k, my_list, bb_factory)
    return TransportProcess(link, upper)
