"""``PiBSM`` — the flagship protocol of Section 5.2.

Bipartite authenticated network, ``tL < k/3`` and ``tR`` up to ``k``
(the whole right side may be byzantine).  The paper's code, round by
round:

* Parties in ``R``: (1) forward properly signed relay messages between
  parties in ``L`` (Lemma 10); (2) send their preference list to every
  party in ``L``; (3) at the deadline, match according to the most
  common suggestion received from ``L``.
* Parties in ``L``: communicate among themselves through the timed
  signed relay (a fully-connected network with ``2 Delta`` delay where
  omissions require all of ``R`` byzantine); broadcast their lists via
  ``PiBB``; agree on every ``R``-party's list via ``PiBA`` (default
  list when nothing arrived); if any agreed value is ``bot``, match
  nobody; otherwise run ``AG-S`` locally, tell each ``R``-party its
  match, and output their own.

Schedule (real rounds; one virtual round = 2 real rounds):

* real 0 — ``R`` sends preference lists; ``L`` starts the ``PiBB``s;
* real 1 — ``L`` receives ``R``'s lists ("wait Delta time");
* real 2 — ``L`` starts the ``PiBA``s (virtual round 1);
* both batches finish at virtual round ``3 tL + 5``
  (``= max(Delta_BA(2 Delta) + Delta, Delta_BB(2 Delta))``), i.e. real
  round ``2 (3 tL + 5)``, when ``L`` decides and sends suggestions;
* real ``2 (3 tL + 5) + 1`` — ``R`` decides on the majority suggestion.

The implementation is side-generic: ``computing_side="R"`` yields the
mirrored protocol used when ``tR < k/3`` and ``tL`` may reach ``k``
(Theorem 6's symmetric case).
"""

from __future__ import annotations

from typing import Sequence

from repro.consensus.omission_bb import PiBB
from repro.consensus.phase_king import PiBA
from repro.core.relays import TimedSignedRelayLink, timed_forward_duty
from repro.errors import ProtocolError
from repro.ids import LEFT, PartyId, left_side, right_side
from repro.matching.gale_shapley import gale_shapley
from repro.matching.preferences import (
    PreferenceList,
    PreferenceProfile,
    default_list,
    is_valid_list,
)
from repro.net.mux import Mux
from repro.net.process import Envelope, Process
from repro.net.shift import LazyShiftedProcess
from repro.net.transports import VirtualContext

__all__ = ["PiBSMComputing", "PiBSMResponding", "pibsm_decision_rounds"]


def _side_parties(side: str, k: int) -> tuple[PartyId, ...]:
    return left_side(k) if side == "L" else right_side(k)


def pibsm_decision_rounds(k: int, t_computing: int) -> tuple[int, int]:
    """(computing-side decision round, responding-side deadline) in real rounds.

    Both ``PiBB`` (virtual ``3t + 5``) and the shifted ``PiBA``
    (``1 + (3t + 4)``) finish at virtual round ``3t + 5``.
    """
    virtual_done = 3 * t_computing + 5
    computing = 2 * virtual_done
    responding = computing + 1
    return computing, responding


class PiBSMComputing(Process):
    """``PiBSM`` code for a party on the computing side (``L`` in the paper)."""

    def __init__(
        self,
        me: PartyId,
        k: int,
        t: int,
        my_list: PreferenceList,
        computing_side: str = "L",
    ) -> None:
        if me.side != computing_side:
            raise ProtocolError(f"{me} is not on computing side {computing_side}")
        if t < 0 or 3 * t >= k:
            raise ProtocolError(f"PiBSM needs t < k/3 on the computing side, got t={t}, k={k}")
        self.me = me
        self.k = k
        self.t = t
        self.my_list = tuple(my_list)
        self.side = computing_side
        self.other_side = "R" if computing_side == "L" else "L"
        self.link = TimedSignedRelayLink(me, k, side=computing_side)
        self.mux = Mux()
        self._vctx: VirtualContext | None = None
        self._other_prefs: dict[PartyId, PreferenceList] = {}
        self._started = False

    # -- wiring ---------------------------------------------------------------------

    def _group(self) -> tuple[PartyId, ...]:
        return _side_parties(self.side, self.k)

    def _others_side(self) -> tuple[PartyId, ...]:
        return _side_parties(self.other_side, self.k)

    def _start_instances(self) -> None:
        group = self._group()
        for sender in group:
            value = self.my_list if sender == self.me else None
            self.mux.add(
                ("bb", sender),
                PiBB(
                    sender=sender,
                    group=group,
                    t=self.t,
                    value=value,
                    default=default_list(sender, self.k),
                    validator=lambda v, s=sender: is_valid_list(s, v, self.k),
                ),
            )
        for responder in self._others_side():
            self.mux.add(
                ("ba", responder),
                LazyShiftedProcess(
                    factory=lambda r=responder: PiBA(
                        group=group, t=self.t, value=self._pref_or_default(r)
                    ),
                    shift=1,
                ),
            )

    def _pref_or_default(self, responder: PartyId) -> PreferenceList:
        return self._other_prefs.get(responder, default_list(responder, self.k))

    # -- rounds ----------------------------------------------------------------------

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        leftover = self.link.ingest(ctx, inbox)

        # "Wait Delta time to receive preference lists from parties in R."
        if ctx.round == 1:
            for envelope in leftover:
                payload = envelope.payload
                if (
                    envelope.src.side == self.other_side
                    and isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "prefs"
                    and envelope.src not in self._other_prefs
                    and is_valid_list(envelope.src, payload[1], self.k)
                ):
                    self._other_prefs[envelope.src] = tuple(payload[1])

        if ctx.round % self.link.delta != 0 or ctx.halted:
            return
        if self._vctx is None:
            self._vctx = VirtualContext(ctx, self.link)
        if not self._started:
            self._started = True
            self._start_instances()
        vinbox = tuple(self.link.collect())
        self.mux.step(self._vctx, vinbox)
        if self.mux.all_done() and not ctx.has_output:
            self._decide(ctx)

    def _decide(self, ctx) -> None:
        values: dict[PartyId, object] = {}
        for sender in self._group():
            values[sender] = self.mux.output_of(("bb", sender))
        for responder in self._others_side():
            values[responder] = self.mux.output_of(("ba", responder))

        # Line 6: any bot => match with nobody and terminate (only possible
        # when the entire responding side is byzantine — Lemma 11).
        if any(value is None for value in values.values()):
            ctx.output(None)
            ctx.halt()
            return

        lists: dict[PartyId, PreferenceList] = {}
        for party, value in values.items():
            if is_valid_list(party, value, self.k):
                lists[party] = tuple(value)
            else:
                lists[party] = default_list(party, self.k)
        profile = PreferenceProfile(k=self.k, lists=lists)
        matching = gale_shapley(profile, proposer_side=LEFT).matching

        for responder in self._others_side():
            ctx.send(responder, ("suggest", matching.partner(responder)))
        ctx.output(matching.partner(self.me))
        ctx.halt()


class PiBSMResponding(Process):
    """``PiBSM`` code for a party on the responding side (``R`` in the paper)."""

    def __init__(
        self,
        me: PartyId,
        k: int,
        t_computing: int,
        my_list: PreferenceList,
        computing_side: str = "L",
    ) -> None:
        if me.side == computing_side:
            raise ProtocolError(f"{me} is on the computing side {computing_side}")
        self.me = me
        self.k = k
        self.t = t_computing
        self.my_list = tuple(my_list)
        self.computing_side = computing_side
        _, self.deadline = pibsm_decision_rounds(k, t_computing)
        self._suggestions: dict[PartyId, object] = {}

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        computing = _side_parties(self.computing_side, self.k)

        # Line 2: send the preference list to every party on the other side.
        if ctx.round == 0:
            for dst in computing:
                ctx.send(dst, ("prefs", self.my_list))

        for envelope in inbox:
            # Line 1: forwarding duty for the timed signed relay.
            if timed_forward_duty(ctx, envelope, self.k, self.computing_side):
                continue
            payload = envelope.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "suggest"
                and envelope.src.side == self.computing_side
                and envelope.src not in self._suggestions
            ):
                self._suggestions[envelope.src] = payload[1]

        # Lines 3-5: decide on the most common suggestion at the deadline.
        if ctx.round >= self.deadline and not ctx.has_output:
            counts: dict[PartyId, int] = {}
            for value in self._suggestions.values():
                if (
                    isinstance(value, PartyId)
                    and value.side == self.computing_side
                    and value.index < self.k
                ):
                    counts[value] = counts.get(value, 0) + 1
            if counts:
                best = min(counts, key=lambda party: (-counts[party], party))
                ctx.output(best)
            else:
                ctx.output(None)
            ctx.halt()
