"""The paper's contribution: byzantine stable matching protocols.

* :mod:`repro.core.problem` — settings and instances (``bSM`` / ``sSM``);
* :mod:`repro.core.verdict` — machine-checked bSM properties;
* :mod:`repro.core.relays` — the channel-simulation lemmas (6, 8, 10);
* :mod:`repro.core.bb_based` — the generic BB-then-local-Gale-Shapley
  protocol (Lemma 1);
* :mod:`repro.core.bipartite_auth` — ``PiBSM`` (Section 5.2);
* :mod:`repro.core.simplified` — sSM wrappers and reductions (Lemmas 2, 3);
* :mod:`repro.core.solvability` — the characterization oracle
  (Theorems 2-7);
* :mod:`repro.core.runner` — end-to-end harness.
"""

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import BSMReport, run_bsm
from repro.core.solvability import SolvabilityVerdict, is_solvable
from repro.core.verdict import PropertyReport, check_bsm, check_ssm

__all__ = [
    "Setting",
    "BSMInstance",
    "PropertyReport",
    "check_bsm",
    "check_ssm",
    "SolvabilityVerdict",
    "is_solvable",
    "run_bsm",
    "BSMReport",
]
