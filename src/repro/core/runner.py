"""End-to-end harness: build, run, and judge a bSM execution.

``run_bsm`` assembles the protocol the solvability oracle prescribes
for the setting (or a caller-forced recipe, to run protocols *outside*
their conditions for attack demos), wires the adversary, executes the
run on a :mod:`repro.runtime` executor, and checks Definition 1's
properties.  The pipeline is exposed in three stages so batch callers
can schedule the middle one themselves:

* :func:`prepare_bsm` — compile instance + adversary into a
  :class:`~repro.runtime.RunPlan` (pure assembly, no execution);
* any :class:`~repro.runtime.Runtime` — execute the plan;
* :func:`finish_bsm` — judge the :class:`RunResult` into a
  :class:`BSMReport`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.adversary.adversary import (
    Adversary,
    BehaviorAdversary,
    CrashBehavior,
    EquivocatingBehavior,
    HonestBehavior,
    RandomNoiseBehavior,
    SilentBehavior,
)
from repro.adversary.mutators import resolve_mutator
from repro.core.bb_based import make_bb_based_party
from repro.core.bipartite_auth import (
    PiBSMComputing,
    PiBSMResponding,
    pibsm_decision_rounds,
)
from repro.core.problem import BSMInstance, Setting
from repro.core.solvability import SolvabilityVerdict, is_solvable
from repro.core.verdict import PropertyReport, check_bsm
from repro.crypto.signatures import KeyRing
from repro.errors import SolvabilityError
from repro.ids import PartyId, all_parties
from repro.net.process import Process
from repro.net.simulator import RunResult
from repro.runtime import RunPlan, Runtime, runtime_for

__all__ = [
    "BSMReport",
    "PreparedBSM",
    "build_party",
    "build_party_with_list",
    "build_processes",
    "make_adversary",
    "prepare_bsm",
    "finish_bsm",
    "recommended_max_rounds",
    "run_bsm",
]


@dataclass
class BSMReport:
    """Everything a benchmark or test wants to know about one run."""

    setting: Setting
    verdict: SolvabilityVerdict
    result: RunResult
    report: PropertyReport
    honest: frozenset[PartyId]

    @property
    def ok(self) -> bool:
        """True when all four bSM properties held."""
        return self.report.all_ok

    def summary(self) -> str:
        return (
            f"{self.setting.describe()} [{self.verdict.recipe}] "
            f"rounds={self.result.rounds} msgs={self.result.message_count} "
            f"{self.report.summary()}"
        )


def build_party_with_list(
    me: PartyId,
    setting: Setting,
    my_list,
    recipe: str,
    force: bool = False,
) -> Process:
    """The party process for ``me`` given only its own preference list.

    ``force=True`` assembles the protocol even when the setting violates
    its conditions — the attack demonstrations rely on this.
    """
    if recipe in ("bb_direct", "bb_majority_relay", "bb_signed_relay"):
        return make_bb_based_party(me, setting, my_list, force=force)
    if recipe in ("pi_bsm", "pi_bsm_mirrored"):
        side = "L" if recipe == "pi_bsm" else "R"
        t = setting.tL if side == "L" else setting.tR
        if me.side == side:
            return PiBSMComputing(me, setting.k, t, my_list, computing_side=side)
        return PiBSMResponding(me, setting.k, t, my_list, computing_side=side)
    raise SolvabilityError(f"unknown recipe {recipe!r}")


def build_party(
    me: PartyId,
    instance: BSMInstance,
    recipe: str,
) -> Process:
    """The party process for ``me`` under a recipe (see ``solvability.RECIPES``)."""
    return build_party_with_list(
        me, instance.setting, instance.profile.list_of(me), recipe
    )


def build_processes(instance: BSMInstance, recipe: str) -> dict[PartyId, Process]:
    """Party processes for all ``2k`` parties."""
    return {
        party: build_party(party, instance, recipe)
        for party in all_parties(instance.setting.k)
    }


def recommended_max_rounds(setting: Setting) -> int:
    """A generous round budget covering every recipe's schedule."""
    k, tL, tR = setting.k, setting.tL, setting.tR
    dolev = 2 * (tL + tR + 3)
    king = 2 * (3 * (min(tL, tR) + 3) + 4)
    pibsm = pibsm_decision_rounds(k, max(0, min(tL, tR)))[1] + 2
    return 4 * max(dolev, king, pibsm, 10)


def make_adversary(
    instance: BSMInstance,
    corrupted: Iterable[PartyId],
    kind: str = "silent",
    recipe: str | None = None,
    seed: int = 0,
    crash_round: int = 2,
    mutator: str | Callable[[int, PartyId, object], object | None] | None = None,
) -> Adversary:
    """A canned adversary corrupting ``corrupted`` with a uniform behavior.

    Kinds: ``"silent"`` (send nothing), ``"noise"`` (random garbage),
    ``"crash"`` (honest until ``crash_round``), ``"honest"`` (run the
    real protocol — byzantine in name only), ``"equivocate"`` (honest
    process with per-recipient payload mutation via ``mutator``).

    ``mutator`` may be a callable or the name of a canned mutator from
    :mod:`repro.adversary.mutators`; ``"equivocate"`` without a mutator
    defaults to the canned ``"reverse_even"`` split-view lie.
    """
    setting = instance.setting
    topology = setting.topology()
    chosen = recipe
    if chosen is None:
        verdict = is_solvable(setting)
        chosen = verdict.recipe or "bb_direct"
    behaviors = {}
    rng = random.Random(seed)
    for party in sorted(set(corrupted)):
        if kind == "silent":
            behaviors[party] = SilentBehavior()
        elif kind == "noise":
            behaviors[party] = RandomNoiseBehavior(seed=rng.randrange(1 << 30))
        elif kind == "crash":
            behaviors[party] = CrashBehavior(
                build_party(party, instance, chosen), topology, crash_round
            )
        elif kind == "honest":
            behaviors[party] = HonestBehavior(build_party(party, instance, chosen), topology)
        elif kind == "equivocate":
            resolved = resolve_mutator(mutator if mutator is not None else "reverse_even")
            behaviors[party] = EquivocatingBehavior(
                build_party(party, instance, chosen), topology, resolved
            )
        else:
            raise SolvabilityError(f"unknown adversary kind {kind!r}")
    return BehaviorAdversary(behaviors)


@dataclass
class PreparedBSM:
    """One bSM execution, assembled but not yet run.

    The :attr:`plan` is ready for any :class:`~repro.runtime.Runtime`;
    the remaining fields are what :func:`finish_bsm` needs to judge the
    result afterwards.
    """

    instance: BSMInstance
    verdict: SolvabilityVerdict
    honest: frozenset[PartyId]
    plan: RunPlan


def prepare_bsm(
    instance: BSMInstance,
    adversary: Adversary | None = None,
    *,
    recipe: str | None = None,
    max_rounds: int | None = None,
    enforce_structure: bool = True,
    record_trace: bool = False,
    keyring: KeyRing | None = None,
    verdict: SolvabilityVerdict | None = None,
    drop_rule=None,
    trace=None,
    label: str = "",
) -> PreparedBSM:
    """Compile one bSM execution into a runnable plan (no execution).

    Args mirror :func:`run_bsm`; see there.
    """
    setting = instance.setting
    if verdict is None:
        verdict = is_solvable(setting)
    chosen = recipe if recipe is not None else verdict.recipe
    if chosen is None:
        raise SolvabilityError(
            f"{setting.describe()} is unsolvable ({verdict.reason}); "
            "pass an explicit recipe to run a protocol out of its domain"
        )

    processes = build_processes(instance, chosen)
    corrupted = frozenset(adversary.initial_corruptions) if adversary is not None else frozenset()
    honest = frozenset(all_parties(setting.k)) - corrupted

    if setting.authenticated:
        if keyring is None:
            keyring = KeyRing(all_parties(setting.k))
    else:
        keyring = None

    plan = RunPlan(
        topology=setting.topology(),
        processes=processes,
        adversary=adversary,
        keyring=keyring,
        structure=setting.structure() if enforce_structure else None,
        max_rounds=max_rounds if max_rounds is not None else recommended_max_rounds(setting),
        record_trace=record_trace,
        drop_rule=drop_rule,
        trace_sink=trace,
        label=label or setting.describe(),
    )
    return PreparedBSM(instance=instance, verdict=verdict, honest=honest, plan=plan)


def finish_bsm(prepared: PreparedBSM, result: RunResult) -> BSMReport:
    """Judge an executed plan against Definition 1's properties."""
    return BSMReport(
        setting=prepared.instance.setting,
        verdict=prepared.verdict,
        result=result,
        report=check_bsm(result, prepared.instance.profile, prepared.honest),
        honest=prepared.honest,
    )


def run_bsm(
    instance: BSMInstance,
    adversary: Adversary | None = None,
    *,
    recipe: str | None = None,
    max_rounds: int | None = None,
    enforce_structure: bool = True,
    record_trace: bool = False,
    keyring: KeyRing | None = None,
    verdict: SolvabilityVerdict | None = None,
    runtime: str | Runtime = "lockstep",
    drop_rule=None,
    trace=None,
    label: str = "",
) -> BSMReport:
    """Run one bSM execution end to end.

    Args:
        instance: setting + true preference profile.
        adversary: optional adversary (its corruptions define honesty).
        recipe: protocol recipe override; defaults to the oracle's choice
            (raises for unsolvable settings unless forced).
        max_rounds: round budget (default: schedule-derived).
        enforce_structure: reject corruption sets beyond ``Z*``.
        record_trace: keep the full message trace on the result.
        keyring: pre-built PKI to reuse (the batch engine memoizes one
            per ``k`` across thousands of runs); built fresh when omitted.
        verdict: pre-computed solvability verdict for the setting (the
            batch engine memoizes these too); computed when omitted.
        runtime: executor name (``"lockstep"``/``"event"``/``"batch"``)
            or a ready :class:`~repro.runtime.Runtime` instance.
        drop_rule: optional link faults (see :mod:`repro.net.faults`).
        trace: optional structured trace sink
            (see :mod:`repro.runtime.trace`).
        label: trace label for this run (default: the setting).
    """
    prepared = prepare_bsm(
        instance,
        adversary,
        recipe=recipe,
        max_rounds=max_rounds,
        enforce_structure=enforce_structure,
        record_trace=record_trace,
        keyring=keyring,
        verdict=verdict,
        drop_rule=drop_rule,
        trace=trace,
        label=label,
    )
    executor = runtime_for(runtime) if isinstance(runtime, str) else runtime
    result = executor.run(prepared.plan)
    return finish_bsm(prepared, result)
