"""Machine-checked bSM / sSM properties over run results.

Definition 1's four properties, restated operationally over a
:class:`~repro.net.simulator.RunResult`:

* **termination** — every honest party halted with a declared output
  that is either ``None`` (nobody) or a party on its opposite side;
* **symmetry** — if honest ``u`` outputs honest ``v``, then ``v``
  outputs ``u``;
* **stability** — no blocking pair of honest parties (against their
  true preference lists);
* **non-competition** — no two honest parties output the same party.

For sSM, stability is replaced by **simplified stability**: two honest
mutual favorites must output each other (Section 3).

Each check reports independently, and violations carry human-readable
evidence — the attack benchmarks print exactly which property broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.ids import PartyId
from repro.matching.preferences import PreferenceProfile
from repro.matching.stability import restricted_blocking_pairs
from repro.net.simulator import RunResult

__all__ = ["PropertyReport", "check_bsm", "check_ssm"]


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of checking one run against the bSM/sSM properties."""

    termination: bool
    symmetry: bool
    stability: bool
    non_competition: bool
    violations: tuple[str, ...]

    @property
    def all_ok(self) -> bool:
        """True when every property holds."""
        return self.termination and self.symmetry and self.stability and self.non_competition

    def summary(self) -> str:
        """Compact pass/fail line, e.g. ``term=ok sym=ok stab=VIOLATED nc=ok``."""

        def flag(ok: bool) -> str:
            return "ok" if ok else "VIOLATED"

        return (
            f"term={flag(self.termination)} sym={flag(self.symmetry)} "
            f"stab={flag(self.stability)} nc={flag(self.non_competition)}"
        )


def _valid_output(party: PartyId, value: object) -> bool:
    if value is None:
        return True
    return isinstance(value, PartyId) and value.side == party.opposite_side


def _base_checks(
    result: RunResult,
    honest: frozenset[PartyId],
) -> tuple[bool, bool, bool, list[str], dict[PartyId, object]]:
    violations: list[str] = []

    outputs: dict[PartyId, object] = {}
    termination = True
    for party in sorted(honest):
        if party not in result.outputs or party not in result.halted:
            termination = False
            violations.append(f"termination: {party} never decided")
            continue
        value = result.outputs[party]
        if not _valid_output(party, value):
            termination = False
            violations.append(
                f"termination: {party} decided on invalid value {value!r}"
            )
            continue
        outputs[party] = value

    symmetry = True
    for party, value in sorted(outputs.items()):
        if isinstance(value, PartyId) and value in honest:
            back = outputs.get(value)
            if back != party:
                symmetry = False
                violations.append(
                    f"symmetry: {party} -> {value} but {value} -> {back}"
                )

    non_competition = True
    holders: dict[PartyId, PartyId] = {}
    for party, value in sorted(outputs.items()):
        if not isinstance(value, PartyId):
            continue
        if value in holders:
            non_competition = False
            violations.append(
                f"non-competition: {holders[value]} and {party} both output {value}"
            )
        else:
            holders[value] = party

    return termination, symmetry, non_competition, violations, outputs


def check_bsm(
    result: RunResult,
    profile: PreferenceProfile,
    honest: Iterable[PartyId],
) -> PropertyReport:
    """Check the four bSM properties of Definition 1.

    Args:
        result: the finished run.
        profile: everyone's *true* preference lists (honest entries used).
        honest: the honest parties.
    """
    honest_set = frozenset(honest)
    termination, symmetry, non_competition, violations, outputs = _base_checks(
        result, honest_set
    )

    lists = {party: profile.list_of(party) for party in honest_set}
    blocking = restricted_blocking_pairs(outputs, lists, honest_set)
    stability = not blocking
    for u, v in blocking:
        violations.append(f"stability: honest blocking pair ({u}, {v})")

    return PropertyReport(
        termination=termination,
        symmetry=symmetry,
        stability=stability,
        non_competition=non_competition,
        violations=tuple(violations),
    )


def check_ssm(
    result: RunResult,
    favorites: Mapping[PartyId, PartyId],
    honest: Iterable[PartyId],
) -> PropertyReport:
    """Check the sSM properties (simplified stability instead of stability)."""
    honest_set = frozenset(honest)
    termination, symmetry, non_competition, violations, outputs = _base_checks(
        result, honest_set
    )

    simplified = True
    for party in sorted(honest_set):
        favorite = favorites.get(party)
        if favorite is None or favorite not in honest_set:
            continue
        if favorites.get(favorite) != party:
            continue
        if party < favorite:  # evaluate each mutual pair once
            if outputs.get(party) != favorite or outputs.get(favorite) != party:
                simplified = False
                violations.append(
                    f"simplified-stability: mutual favorites ({party}, {favorite}) "
                    f"output ({outputs.get(party)}, {outputs.get(favorite)})"
                )

    return PropertyReport(
        termination=termination,
        symmetry=symmetry,
        stability=simplified,
        non_competition=non_competition,
        violations=tuple(violations),
    )
