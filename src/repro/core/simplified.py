"""Simplified stable matching (Section 3) and its reductions.

* **Lemma 2 (sSM -> bSM)** — an sSM protocol from any bSM protocol:
  each party builds an arbitrary complete list with its favorite ranked
  first and joins the bSM protocol (:func:`favorite_first_list`,
  :func:`ssm_profile_from_favorites`).
* **Lemma 3 (party splitting)** — from a protocol for ``2k`` parties,
  a protocol for ``2d`` parties in which every small-system party
  *simulates* a block of large-system parties and only its block's
  representative's match counts (:class:`SimulatingParty`,
  :func:`split_instance`).  Executable, so the tests can check that the
  reduction preserves the sSM properties.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.errors import ProtocolError, SolvabilityError
from repro.ids import PartyId, all_parties
from repro.matching.preferences import PreferenceList, PreferenceProfile, default_list
from repro.net.process import Context, Envelope, Process
from repro.net.topology import Topology

__all__ = [
    "favorite_first_list",
    "ssm_profile_from_favorites",
    "block_partition",
    "split_instance",
    "SimulatingParty",
    "run_ssm",
]


def favorite_first_list(party: PartyId, favorite: PartyId, k: int) -> PreferenceList:
    """An arbitrary complete list with ``favorite`` ranked first (Lemma 2)."""
    if favorite.side == party.side:
        raise SolvabilityError(f"{party}'s favorite must be on the opposite side")
    rest = tuple(p for p in default_list(party, k) if p != favorite)
    return (favorite,) + rest


def ssm_profile_from_favorites(
    favorites: Mapping[PartyId, PartyId], k: int
) -> PreferenceProfile:
    """Lift an sSM input (favorites) to a full bSM profile (Lemma 2)."""
    lists = {
        party: favorite_first_list(party, favorites[party], k)
        for party in all_parties(k)
    }
    return PreferenceProfile(k=k, lists=lists)


# -- Lemma 3: party splitting -------------------------------------------------------


def block_partition(k: int, d: int) -> dict[PartyId, tuple[PartyId, ...]]:
    """Partition each side of a ``2k``-party system into ``d`` blocks.

    Returns a map from small-system party (``2d`` universe) to its block
    of large-system parties (``2k`` universe).  Block ``i`` holds the
    contiguous index range; the *representative* of a block is its
    first member.
    """
    if not 0 < d <= k:
        raise SolvabilityError(f"need 0 < d <= k, got d={d}, k={k}")
    blocks: dict[PartyId, tuple[PartyId, ...]] = {}
    base, extra = divmod(k, d)
    for side in ("L", "R"):
        start = 0
        for i in range(d):
            size = base + (1 if i < extra else 0)
            members = tuple(PartyId(side, start + j) for j in range(size))
            blocks[PartyId(side, i)] = members
            start += size
    return blocks


def split_instance(
    favorites_small: Mapping[PartyId, PartyId],
    k: int,
    d: int,
) -> tuple[dict[PartyId, tuple[PartyId, ...]], dict[PartyId, PartyId]]:
    """Lemma 3's input assignment: representatives inherit the small inputs.

    Returns ``(blocks, favorites_large)``: if small party ``l'_i`` has
    favorite ``r'_j``, the representative of block ``i`` gets the
    representative of block ``j`` as its favorite; non-representatives
    get arbitrary (default) favorites.
    """
    blocks = block_partition(k, d)
    representatives = {small: members[0] for small, members in blocks.items()}
    favorites_large: dict[PartyId, PartyId] = {}
    for party in all_parties(k):
        favorites_large[party] = default_list(party, k)[0]
    for small, favorite_small in favorites_small.items():
        favorites_large[representatives[small]] = representatives[favorite_small]
    return blocks, favorites_large


class SimulatingParty(Process):
    """One small-system party running a block of large-system parties.

    Large-system messages between blocks travel over the small system's
    channels tagged ``("sim", src, dst, payload)``; messages within the
    block are delivered locally with the same one-round latency.  An
    honest host only accepts a tagged message when the *claimed*
    large-system sender is actually hosted by the physical sender — so
    byzantine hosts can only lie in the name of parties they host,
    matching Lemma 3's corruption accounting.

    The host's output follows the lemma: if the block's representative
    matches another block's representative, output that block's
    small-system party; otherwise output nobody.
    """

    def __init__(
        self,
        me_small: PartyId,
        blocks: Mapping[PartyId, tuple[PartyId, ...]],
        process_factory: Callable[[PartyId], Process],
        big_topology: Topology,
        signers: Mapping[PartyId, object] | None = None,
    ) -> None:
        self.me_small = me_small
        self.blocks = {small: tuple(members) for small, members in blocks.items()}
        self.my_block = self.blocks[me_small]
        self.big_topology = big_topology
        self._host_of: dict[PartyId, PartyId] = {}
        for small, members in self.blocks.items():
            for member in members:
                self._host_of[member] = small
        signers = signers or {}
        self._processes: dict[PartyId, Process] = {}
        self._contexts: dict[PartyId, Context] = {}
        for member in self.my_block:
            self._processes[member] = process_factory(member)
            self._contexts[member] = Context(member, big_topology, signers.get(member))
        self._pending: list[Envelope] = []
        self._next_pending: list[Envelope] = []

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        # 1. Unpack inter-block messages (authenticity: claimed sender
        #    must be hosted by the physical sender).
        for envelope in inbox:
            payload = envelope.payload
            if not (
                isinstance(payload, tuple)
                and len(payload) == 4
                and payload[0] == "sim"
                and isinstance(payload[1], PartyId)
                and isinstance(payload[2], PartyId)
            ):
                continue
            src_big, dst_big, inner = payload[1], payload[2], payload[3]
            if self._host_of.get(src_big) != envelope.src:
                continue
            if self._host_of.get(dst_big) != self.me_small:
                continue
            self._pending.append(Envelope(src_big, dst_big, envelope.sent_round, inner))

        # 2. Deliver and run each hosted party.
        inboxes: dict[PartyId, list[Envelope]] = {member: [] for member in self.my_block}
        for envelope in self._pending:
            inboxes[envelope.dst].append(envelope)
        self._pending = []

        for member in self.my_block:
            member_ctx = self._contexts[member]
            if member_ctx.halted:
                continue
            member_ctx.round = ctx.round
            self._processes[member].on_round(member_ctx, tuple(inboxes[member]))
            for dst_big, payload in member_ctx._drain_outbox():
                self._route(ctx, member, dst_big, payload)

        # 3. Local deliveries mature next round (uniform latency).
        self._pending, self._next_pending = self._next_pending, []

        # 4. Decide when every hosted party has halted.
        if not ctx.has_output and all(c.halted for c in self._contexts.values()):
            self._decide(ctx)

    def _route(self, ctx, src_big: PartyId, dst_big: PartyId, payload: object) -> None:
        host = self._host_of.get(dst_big)
        if host is None:
            raise ProtocolError(f"simulated {src_big} addressed unknown party {dst_big}")
        if host == self.me_small:
            self._next_pending.append(Envelope(src_big, dst_big, ctx.round, payload))
            return
        ctx.send(host, ("sim", src_big, dst_big, payload))

    def _decide(self, ctx) -> None:
        representative = self.my_block[0]
        rep_ctx = self._contexts[representative]
        partner = rep_ctx.current_output if rep_ctx.has_output else None
        small_output: PartyId | None = None
        if isinstance(partner, PartyId):
            host = self._host_of.get(partner)
            if host is not None and self.blocks[host][0] == partner:
                small_output = host
        ctx.output(small_output)
        ctx.halt()


def run_ssm(instance, adversary=None, *, recipe=None, max_rounds=None):
    """Run the sSM protocol of Lemma 2 end to end and check sSM properties.

    Each party lifts its favorite to a favorite-first complete list and
    joins the bSM protocol prescribed for the setting; the verdict then
    checks termination, symmetry, non-competition and *simplified*
    stability against the favorites.

    Args:
        instance: an :class:`~repro.core.problem.SSMInstance`.
        adversary: optional adversary (defines the honest set).
        recipe: protocol recipe override (defaults to the oracle's pick).
        max_rounds: round budget override.

    Returns:
        ``(result, report)``: the raw :class:`~repro.net.simulator.RunResult`
        and the :class:`~repro.core.verdict.PropertyReport` for sSM.
    """
    from repro.core.problem import BSMInstance
    from repro.core.runner import run_bsm
    from repro.core.verdict import check_ssm

    profile = ssm_profile_from_favorites(instance.favorites, instance.setting.k)
    bsm_instance = BSMInstance(instance.setting, profile)
    bsm_report = run_bsm(
        bsm_instance, adversary, recipe=recipe, max_rounds=max_rounds
    )
    honest = bsm_report.honest
    report = check_ssm(bsm_report.result, instance.favorites, honest)
    return bsm_report.result, report
