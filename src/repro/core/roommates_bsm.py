"""Byzantine stable roommates — the paper's first future-work direction.

Section 6: "A first direction could be generalizing our results to the
stable roommate problem. ... the stable matching problem comes with the
guarantee that a stable matching always exists, while the stable
roommate problem does not. Hence, definitions and properties need to be
refined to account for this."

This module carries out that refinement and builds the corresponding
protocol on the substrates already in the library:

**Problem (bSRM).**  ``n`` parties in one set, each ranking all the
others; up to ``t`` byzantine.  A protocol achieves byzantine stable
roommates when, for honest parties:

* *termination* — every honest party outputs a party or nobody;
* *symmetry* — mutual among honest outputs;
* *non-competition* — no two honest parties output the same party;
* *conditional stability* — whenever the **agreed profile** (everyone's
  broadcast list, defaults substituted for invalid ones) admits a
  stable matching, there is no blocking pair of honest parties.

The conditional qualifier is the refinement the paper calls for: on
unsolvable instances *any* all-nobody outcome leaves mutually-preferring
honest pairs, so unconditional stability is unachievable even without
faults.

**Protocol.**  The Lemma 1 blueprint carries over verbatim: broadcast
every list (Dolev-Strong when authenticated, threshold phase king when
not), substitute the canonical default list for invalid broadcasts, run
Irving's algorithm locally, output the own match — or nobody when
Irving reports the agreed instance unsolvable.  Consistency of BB makes
all honest parties agree on solvability, so the outcome is symmetric
and non-competing by construction.

**Impossibility inheritance.**  The paper notes its necessary conditions
apply to the roommates variant as well (there is no longer a left/right
distinction, so the product structure degenerates to a threshold one);
``tests/test_roommates_bsm.py`` exercises the ``t < n/3`` boundary for
the unauthenticated engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.adversary.structures import ThresholdStructure
from repro.consensus.dolev_strong import DolevStrongBB
from repro.consensus.general_adversary import GeneralAdversaryBB
from repro.crypto.signatures import KeyRing
from repro.errors import PreferenceError, SolvabilityError
from repro.ids import PartyId, all_parties
from repro.matching.roommates import stable_roommates
from repro.net.mux import Mux
from repro.net.process import Envelope, Process
from repro.net.simulator import RunResult
from repro.net.topology import FullyConnected

__all__ = [
    "RoommatesSetting",
    "RoommatesInstance",
    "default_roommates_list",
    "is_valid_roommates_list",
    "RoommatesParty",
    "RoommatesReport",
    "check_roommates",
    "run_roommates",
]


@dataclass(frozen=True)
class RoommatesSetting:
    """One byzantine-stable-roommates configuration.

    ``n`` parties (even, mapped onto the library's ``2k`` identifier
    space), up to ``t`` byzantine, with or without signatures.
    """

    n: int
    t: int
    authenticated: bool

    def __post_init__(self) -> None:
        if self.n < 2 or self.n % 2 != 0:
            raise SolvabilityError(f"roommates needs an even n >= 2, got {self.n}")
        if not 0 <= self.t < self.n:
            raise SolvabilityError(f"t must lie in [0, n), got {self.t}")
        if not self.authenticated and 3 * self.t >= self.n:
            raise SolvabilityError(
                "unauthenticated roommates BB needs t < n/3 "
                f"(got t={self.t}, n={self.n})"
            )

    @property
    def k(self) -> int:
        return self.n // 2

    def parties(self) -> tuple[PartyId, ...]:
        return all_parties(self.k)

    def describe(self) -> str:
        crypto = "auth" if self.authenticated else "unauth"
        return f"roommates/{crypto} n={self.n} t={self.t}"


def default_roommates_list(party: PartyId, parties: Sequence[PartyId]) -> tuple[PartyId, ...]:
    """The canonical default ranking: everyone else in id order."""
    return tuple(p for p in sorted(parties) if p != party)


def is_valid_roommates_list(party: PartyId, value: object, parties: Sequence[PartyId]) -> bool:
    """True when ``value`` ranks every other party exactly once."""
    if not isinstance(value, (tuple, list)):
        return False
    expected = set(parties) - {party}
    entries = list(value)
    return len(entries) == len(expected) and set(entries) == expected and all(
        isinstance(e, PartyId) for e in entries
    )


@dataclass(frozen=True)
class RoommatesInstance:
    """Setting plus everyone's true single-set rankings."""

    setting: RoommatesSetting
    preferences: Mapping[PartyId, tuple[PartyId, ...]]

    def __post_init__(self) -> None:
        parties = self.setting.parties()
        if set(self.preferences) != set(parties):
            raise PreferenceError("preferences must cover exactly the n parties")
        for party, ranking in self.preferences.items():
            if not is_valid_roommates_list(party, ranking, parties):
                raise PreferenceError(f"{party}: invalid roommates ranking")
        object.__setattr__(
            self,
            "preferences",
            {party: tuple(ranking) for party, ranking in self.preferences.items()},
        )


class RoommatesParty(Process):
    """One party of the byzantine stable roommates protocol."""

    def __init__(self, me: PartyId, setting: RoommatesSetting, my_list: Sequence[PartyId]) -> None:
        self.me = me
        self.setting = setting
        self.my_list = tuple(my_list)
        self.mux = Mux()
        self._started = False

    def _bb_factory(self, sender: PartyId, value: object) -> Process:
        group = self.setting.parties()
        if self.setting.authenticated:
            return DolevStrongBB(sender=sender, group=group, t=self.setting.t, value=value)
        structure = ThresholdStructure(group, self.setting.t)
        return GeneralAdversaryBB(
            sender=sender, group=group, structure=structure, value=value
        )

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        if not self._started:
            self._started = True
            for sender in self.setting.parties():
                value = self.my_list if sender == self.me else None
                self.mux.add(("bb", sender), self._bb_factory(sender, value))
        self.mux.step(ctx, inbox)
        if self.mux.all_done() and not ctx.has_output:
            self._decide(ctx)

    def _decide(self, ctx) -> None:
        parties = self.setting.parties()
        agreed: dict[PartyId, tuple[PartyId, ...]] = {}
        for sender in parties:
            value = self.mux.output_of(("bb", sender))
            if is_valid_roommates_list(sender, value, parties):
                agreed[sender] = tuple(value)
            else:
                agreed[sender] = default_roommates_list(sender, parties)
        result = stable_roommates(agreed)
        if result.solvable:
            ctx.output(result.matching[self.me])
        else:
            ctx.output(None)
        ctx.halt()


@dataclass(frozen=True)
class RoommatesVerdict:
    """Machine-checked bSRM properties."""

    termination: bool
    symmetry: bool
    non_competition: bool
    conditional_stability: bool
    violations: tuple[str, ...]

    @property
    def all_ok(self) -> bool:
        return (
            self.termination
            and self.symmetry
            and self.non_competition
            and self.conditional_stability
        )


@dataclass
class RoommatesReport:
    """Result of one run: outputs, verdict, run statistics."""

    setting: RoommatesSetting
    result: RunResult
    verdict: RoommatesVerdict
    honest: frozenset

    @property
    def ok(self) -> bool:
        return self.verdict.all_ok


def check_roommates(
    result: RunResult,
    instance: RoommatesInstance,
    honest,
    *,
    reference_solvable: bool | None = None,
) -> RoommatesVerdict:
    """Judge a run against the refined bSRM properties.

    ``reference_solvable`` overrides the solvability of the *agreed*
    profile when the caller knows what byzantine parties broadcast; by
    default the true profile decides (correct for fault-free and
    honest-behavior adversaries).
    """
    honest_set = frozenset(honest)
    violations: list[str] = []
    parties = instance.setting.parties()

    outputs: dict[PartyId, PartyId | None] = {}
    termination = True
    for party in sorted(honest_set):
        if party not in result.outputs or party not in result.halted:
            termination = False
            violations.append(f"termination: {party} never decided")
            continue
        value = result.outputs[party]
        if value is not None and (not isinstance(value, PartyId) or value == party or value not in parties):
            termination = False
            violations.append(f"termination: {party} decided invalid {value!r}")
            continue
        outputs[party] = value

    symmetry = True
    for party, value in sorted(outputs.items()):
        if isinstance(value, PartyId) and value in honest_set:
            if outputs.get(value) != party:
                symmetry = False
                violations.append(f"symmetry: {party} -> {value} -> {outputs.get(value)}")

    non_competition = True
    holders: dict[PartyId, PartyId] = {}
    for party, value in sorted(outputs.items()):
        if not isinstance(value, PartyId):
            continue
        if value in holders:
            non_competition = False
            violations.append(
                f"non-competition: {holders[value]} and {party} both output {value}"
            )
        else:
            holders[value] = party

    if reference_solvable is None:
        reference_solvable = stable_roommates(dict(instance.preferences)).solvable
    conditional_stability = True
    if reference_solvable:
        rank = {
            party: {other: i for i, other in enumerate(instance.preferences[party])}
            for party in honest_set
        }
        ordered = sorted(honest_set)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                if outputs.get(a) == b:
                    continue
                a_current = outputs.get(a)
                b_current = outputs.get(b)
                a_better = a_current is None or rank[a].get(b, 10**9) < rank[a].get(
                    a_current, 10**9
                )
                b_better = b_current is None or rank[b].get(a, 10**9) < rank[b].get(
                    b_current, 10**9
                )
                if a_better and b_better:
                    conditional_stability = False
                    violations.append(f"stability: honest blocking pair ({a}, {b})")

    return RoommatesVerdict(
        termination=termination,
        symmetry=symmetry,
        non_competition=non_competition,
        conditional_stability=conditional_stability,
        violations=tuple(violations),
    )


def run_roommates(
    instance: RoommatesInstance,
    adversary=None,
    *,
    max_rounds: int = 400,
    reference_solvable: bool | None = None,
    runtime: str = "lockstep",
    drop_rule=None,
    trace=None,
) -> RoommatesReport:
    """Run the byzantine stable roommates protocol end to end.

    ``runtime``, ``drop_rule``, and ``trace`` plug the run into the
    :mod:`repro.runtime` layer exactly like :func:`repro.core.runner.run_bsm`.
    """
    from repro.runtime import RunPlan, runtime_for

    setting = instance.setting
    parties = setting.parties()
    processes = {
        party: RoommatesParty(party, setting, instance.preferences[party])
        for party in parties
    }
    corrupted = (
        frozenset(adversary.initial_corruptions) if adversary is not None else frozenset()
    )
    keyring = KeyRing(parties) if setting.authenticated else None
    plan = RunPlan(
        topology=FullyConnected(k=setting.k),
        processes=processes,
        adversary=adversary,
        keyring=keyring,
        structure=ThresholdStructure(parties, setting.t),
        max_rounds=max_rounds,
        drop_rule=drop_rule,
        trace_sink=trace,
        label=setting.describe(),
    )
    executor = runtime_for(runtime) if isinstance(runtime, str) else runtime
    result = executor.run(plan)
    honest = frozenset(parties) - corrupted
    verdict = check_roommates(
        result, instance, honest, reference_solvable=reference_solvable
    )
    return RoommatesReport(setting=setting, result=result, verdict=verdict, honest=honest)
