"""Problem definitions: settings and instances of bSM / sSM.

A :class:`Setting` pins down everything Definition 1 quantifies over:
the topology (Fig. 1), the crypto assumption, the side size ``k``, and
the corruption budgets ``tL`` / ``tR``.  A :class:`BSMInstance` adds
the honest inputs (a full preference profile); an :class:`SSMInstance`
adds favorites only (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.adversary.structures import ProductThresholdStructure
from repro.errors import SolvabilityError
from repro.ids import PartyId, all_parties
from repro.matching.preferences import PreferenceProfile
from repro.net.topology import TOPOLOGY_NAMES, Topology, topology_by_name

__all__ = ["Setting", "BSMInstance", "SSMInstance"]


@dataclass(frozen=True)
class Setting:
    """One point of the paper's characterization grid."""

    topology_name: str
    authenticated: bool
    k: int
    tL: int
    tR: int

    def __post_init__(self) -> None:
        if self.topology_name not in TOPOLOGY_NAMES:
            raise SolvabilityError(
                f"unknown topology {self.topology_name!r}; expected one of {TOPOLOGY_NAMES}"
            )
        if self.k <= 0:
            raise SolvabilityError(f"k must be positive, got {self.k}")
        if not (0 <= self.tL <= self.k and 0 <= self.tR <= self.k):
            raise SolvabilityError(
                f"corruption budgets must lie in [0, k={self.k}], got tL={self.tL}, tR={self.tR}"
            )

    def topology(self) -> Topology:
        """Instantiate the topology object."""
        return topology_by_name(self.topology_name, self.k)

    def structure(self) -> ProductThresholdStructure:
        """The adversary structure ``Z*`` of this setting."""
        return ProductThresholdStructure(self.k, self.tL, self.tR)

    def describe(self) -> str:
        """Human-readable one-liner."""
        crypto = "auth" if self.authenticated else "unauth"
        return (
            f"{self.topology_name}/{crypto} k={self.k} tL={self.tL} tR={self.tR}"
        )


@dataclass(frozen=True)
class BSMInstance:
    """A bSM run: a setting plus everyone's true preference lists.

    The profile covers all ``2k`` parties; byzantine parties' entries
    are their *nominal* inputs (used when a behavior plays them
    honestly) and are ignored by verdicts.
    """

    setting: Setting
    profile: PreferenceProfile

    def __post_init__(self) -> None:
        if self.profile.k != self.setting.k:
            raise SolvabilityError(
                f"profile k={self.profile.k} does not match setting k={self.setting.k}"
            )


@dataclass(frozen=True)
class SSMInstance:
    """An sSM run: a setting plus one favorite per party (Section 3)."""

    setting: Setting
    favorites: Mapping[PartyId, PartyId]

    def __post_init__(self) -> None:
        expected = set(all_parties(self.setting.k))
        if set(self.favorites) != expected:
            raise SolvabilityError("favorites must cover exactly the 2k parties")
        for party, favorite in self.favorites.items():
            if favorite.side == party.side:
                raise SolvabilityError(
                    f"{party}'s favorite must be on the opposite side, got {favorite}"
                )
        object.__setattr__(self, "favorites", dict(self.favorites))
