"""The paper's channel-simulation lemmas as link layers.

* :class:`MajorityRelayLink` — Lemma 6: a disconnected side tunnels
  through the opposite side; the receiver accepts a message echoed by a
  strict majority (``> k/2``) of the forwarding side.  Sound whenever
  the forwarding side has an honest majority.
* :class:`SignedRelayLink` — Lemma 8: with a PKI one honest forwarder
  suffices; the receiver accepts any correctly signed copy.  Sound
  whenever the forwarding side has at least one honest party.
* :class:`TimedSignedRelayLink` — Lemma 10: the ``PiBSM`` variant with
  timestamps and message identifiers; a message is accepted only within
  ``2 * Delta`` of its claimed send time, so the only possible failure
  mode is a clean *omission*, and omissions require the entire
  forwarding side to be byzantine.

All three present a virtual fully-connected network with a uniform
virtual delay of one virtual round = two real rounds (``delta = 2``);
pairs that already share a physical channel go direct but are buffered
to the same cadence, matching the paper's ``Delta_BA(2 * Delta)``
timing algebra.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto.encoding import encode
from repro.errors import ProtocolError
from repro.ids import PartyId, left_side, right_side
from repro.net.process import Context, Envelope
from repro.net.topology import Topology
from repro.net.transports import LinkLayer

__all__ = [
    "MajorityRelayLink",
    "SignedRelayLink",
    "TimedSignedRelayLink",
    "timed_forward_duty",
]


def _hashable(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def _stable_key(payload: object, memo=None) -> bytes:
    """A deterministic key for payload comparison (tolerates junk).

    ``memo`` is the context's shared encode memo, when one is attached
    (the batched runtime's); it never changes the key, only its cost.
    """
    try:
        return encode(payload, memo)
    except ProtocolError:
        return repr(payload).encode("utf-8", "replace")


class _RelayLinkBase(LinkLayer):
    """Shared plumbing for the Lemma 6 / Lemma 8 relays."""

    #: Subclasses set: "majority" or "signed".
    mode = ""

    def __init__(self, me: PartyId, topology: Topology, group: Iterable[PartyId]) -> None:
        self.delta = 2
        self.me = me
        self.topology = topology
        self.group = tuple(sorted(group))
        self._next_id = 0
        self._ready: list[Envelope] = []
        self._accepted: set[tuple] = set()
        # (src, id) -> payload-key -> (payload, set of forwarders); majority mode.
        self._votes: dict[tuple, dict[bytes, tuple[object, set[PartyId]]]] = {}

    # -- sending -------------------------------------------------------------------

    def virtual_send(self, ctx: Context, dst: PartyId, payload: object) -> None:
        self.check_group_member(dst)
        if dst == self.me:
            raise ProtocolError(f"{self.me} cannot send to itself")
        if self.topology.allows(self.me, dst):
            ctx.send(dst, ("rl.direct", payload))
            return
        msg_id = self._next_id
        self._next_id += 1
        request = self._make_request(ctx, dst, msg_id, payload)
        forwarders = [
            p
            for p in self.topology.neighbors(self.me)
            if p != dst and self.topology.allows(p, dst)
        ]
        for forwarder in forwarders:
            ctx.send(forwarder, request)

    def _make_request(self, ctx: Context, dst: PartyId, msg_id: int, payload: object) -> tuple:
        raise NotImplementedError

    # -- receiving / forwarding -------------------------------------------------------

    def ingest(self, ctx: Context, inbox: Sequence[Envelope]) -> list[Envelope]:
        leftover: list[Envelope] = []
        touched: set[tuple] = set()
        for envelope in inbox:
            handled = self._handle(ctx, envelope, touched)
            if not handled:
                leftover.append(envelope)
        self._evaluate(touched)
        return leftover

    def _handle(self, ctx: Context, envelope: Envelope, touched: set[tuple]) -> bool:
        payload = envelope.payload
        if not isinstance(payload, tuple) or not payload:
            return False
        tag = payload[0]
        if tag == "rl.direct" and len(payload) == 2:
            if envelope.src in self.group:
                self._ready.append(
                    Envelope(envelope.src, self.me, envelope.sent_round, payload[1])
                )
                return True
            return False
        if tag == "rl.req":
            return self._forward(ctx, envelope)
        if tag == "rl.fwd":
            return self._receive_forwarded(ctx, envelope, touched)
        return False

    def _forward(self, ctx: Context, envelope: Envelope) -> bool:
        fields = self._parse_request(ctx, envelope)
        if fields is None:
            return True  # recognized but malformed/bogus: swallow it
        src, dst, msg_id, payload, proof = fields
        if envelope.src != src or dst == self.me or src == self.me:
            return True
        if not self.topology.allows(self.me, dst):
            return True
        forwarded = ("rl.fwd",) + tuple(envelope.payload[1:])
        ctx.send(dst, forwarded)
        return True

    def _receive_forwarded(self, ctx: Context, envelope: Envelope, touched: set[tuple]) -> bool:
        fields = self._parse_request(ctx, envelope)
        if fields is None:
            return True
        src, dst, msg_id, payload, proof = fields
        if dst != self.me or src not in self.group or src == self.me:
            return True
        if not _hashable(msg_id):
            return True
        # Forwarders must sit on the opposite side of the sender —
        # they are the only parties a disconnected sender can reach.
        if envelope.src.side == src.side:
            return True
        key = (src, msg_id)
        if key in self._accepted:
            return True
        if self.mode == "signed":
            if self._verify(ctx, src, dst, msg_id, payload, proof):
                self._accepted.add(key)
                self._ready.append(Envelope(src, self.me, envelope.sent_round, payload))
            return True
        bucket = self._votes.setdefault(key, {})
        payload_key = _stable_key(payload, getattr(ctx, "_encode_memo", None))
        stored = bucket.setdefault(payload_key, (payload, set()))
        stored[1].add(envelope.src)
        touched.add(key)
        return True

    def _evaluate(self, touched: set[tuple]) -> None:
        if self.mode != "majority":
            return
        threshold = self.topology.k / 2
        for key in sorted(touched, key=lambda item: (item[0], repr(item[1]))):
            if key in self._accepted:
                continue
            bucket = self._votes.get(key, {})
            winners = [
                (len(forwarders), payload_key)
                for payload_key, (payload, forwarders) in bucket.items()
                if len(forwarders) > threshold
            ]
            if not winners:
                continue
            winners.sort(key=lambda item: (-item[0], item[1]))
            payload = bucket[winners[0][1]][0]
            self._accepted.add(key)
            src = key[0]
            self._ready.append(Envelope(src, self.me, 0, payload))
            self._votes.pop(key, None)

    def collect(self) -> list[Envelope]:
        ready, self._ready = self._ready, []
        return ready

    # -- per-mode hooks -----------------------------------------------------------------

    def _parse_request(self, ctx: Context, envelope: Envelope):
        raise NotImplementedError

    def _verify(self, ctx, src, dst, msg_id, payload, proof) -> bool:
        raise NotImplementedError


class MajorityRelayLink(_RelayLinkBase):
    """Lemma 6: unauthenticated relay, accepted on a strict majority echo."""

    mode = "majority"

    def _make_request(self, ctx: Context, dst: PartyId, msg_id: int, payload: object) -> tuple:
        return ("rl.req", self.me, dst, msg_id, payload)

    def _parse_request(self, ctx: Context, envelope: Envelope):
        payload = envelope.payload
        if len(payload) != 5:
            return None
        _, src, dst, msg_id, inner = payload
        if not isinstance(src, PartyId) or not isinstance(dst, PartyId):
            return None
        return src, dst, msg_id, inner, None


class SignedRelayLink(_RelayLinkBase):
    """Lemma 8: authenticated relay, accepted on any valid signed copy."""

    mode = "signed"

    @staticmethod
    def signed_body(src: PartyId, dst: PartyId, msg_id: int, payload: object) -> tuple:
        return ("rl", src, dst, msg_id, payload)

    def _make_request(self, ctx: Context, dst: PartyId, msg_id: int, payload: object) -> tuple:
        signature = ctx.sign(self.signed_body(self.me, dst, msg_id, payload))
        return ("rl.req", self.me, dst, msg_id, payload, signature)

    def _parse_request(self, ctx: Context, envelope: Envelope):
        payload = envelope.payload
        if len(payload) != 6:
            return None
        _, src, dst, msg_id, inner, signature = payload
        if not isinstance(src, PartyId) or not isinstance(dst, PartyId):
            return None
        return src, dst, msg_id, inner, signature

    def _forward(self, ctx: Context, envelope: Envelope) -> bool:
        # Forwarders verify before relaying ("receives a message with a
        # valid signature from u, it forwards it") — Lemma 8.
        fields = self._parse_request(ctx, envelope)
        if fields is None:
            return True
        src, dst, msg_id, payload, proof = fields
        if not self._verify(ctx, src, dst, msg_id, payload, proof):
            return True
        return super()._forward(ctx, envelope)

    def _verify(self, ctx, src, dst, msg_id, payload, proof) -> bool:
        try:
            return ctx.verify(src, self.signed_body(src, dst, msg_id, payload), proof)
        except ProtocolError:
            return False


class TimedSignedRelayLink(LinkLayer):
    """Lemma 10: the ``PiBSM`` relay among ``L`` with omission semantics.

    Senders stamp ``(P -> P', tau, id, m)``, sign it, and hand it to the
    whole right side; the recipient accepts only a validly signed, fresh
    message within ``2 * Delta`` of ``tau``.  If at least one party in
    ``R`` is honest every message arrives exactly ``2`` rounds after
    ``tau``; if all of ``R`` is byzantine the message may be omitted —
    never altered, never delayed beyond the window.
    """

    def __init__(self, me: PartyId, k: int, side: str = "L") -> None:
        self.delta = 2
        self.me = me
        self.k = k
        self.side = side
        self.group = left_side(k) if side == "L" else right_side(k)
        self._forwarders = right_side(k) if side == "L" else left_side(k)
        if me not in self.group:
            raise ProtocolError(f"TimedSignedRelayLink({side}): {me} is on the wrong side")
        self._next_id = 0
        self._ready: list[Envelope] = []
        self._seen: set[tuple] = set()

    @staticmethod
    def signed_body(src: PartyId, dst: PartyId, tau: int, msg_id: int, payload: object) -> tuple:
        return ("trl", src, dst, tau, msg_id, payload)

    def virtual_send(self, ctx: Context, dst: PartyId, payload: object) -> None:
        self.check_group_member(dst)
        if dst == self.me:
            raise ProtocolError(f"{self.me} cannot send to itself")
        tau = ctx.round
        msg_id = self._next_id
        self._next_id += 1
        signature = ctx.sign(self.signed_body(self.me, dst, tau, msg_id, payload))
        request = ("trl.req", self.me, dst, tau, msg_id, payload, signature)
        for forwarder in self._forwarders:
            ctx.send(forwarder, request)

    def ingest(self, ctx: Context, inbox: Sequence[Envelope]) -> list[Envelope]:
        leftover: list[Envelope] = []
        for envelope in inbox:
            payload = envelope.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 7
                and payload[0] == "trl.fwd"
            ):
                self._receive(ctx, envelope)
            else:
                leftover.append(envelope)
        return leftover

    def _receive(self, ctx: Context, envelope: Envelope) -> None:
        _, src, dst, tau, msg_id, payload, signature = envelope.payload
        if not isinstance(src, PartyId) or src not in self.group or src == self.me:
            return
        if dst != self.me or not isinstance(tau, int) or not _hashable(msg_id):
            return
        if envelope.src.side == self.side:
            return
        if ctx.round > tau + 2:
            return  # stale: outside the 2*Delta acceptance window
        key = (src, msg_id)
        if key in self._seen:
            return
        try:
            valid = ctx.verify(src, self.signed_body(src, dst, tau, msg_id, payload), signature)
        except ProtocolError:
            valid = False
        if not valid:
            return
        self._seen.add(key)
        self._ready.append(Envelope(src, self.me, tau, payload))

    def collect(self) -> list[Envelope]:
        ready, self._ready = self._ready, []
        return ready


def timed_forward_duty(ctx: Context, envelope: Envelope, k: int, computing_side: str = "L") -> bool:
    """The forwarding rule of ``PiBSM`` (step 1 of the responding side's code).

    Returns True when the envelope was a (well- or mal-formed) relay
    request; forwards it when the signature checks out.
    """
    payload = envelope.payload
    if not (isinstance(payload, tuple) and len(payload) == 7 and payload[0] == "trl.req"):
        return False
    _, src, dst, tau, msg_id, inner, signature = payload
    if not isinstance(src, PartyId) or not isinstance(dst, PartyId):
        return True
    if envelope.src != src or src.side != computing_side or dst.side != computing_side:
        return True
    if src == dst or dst.index >= k:
        return True
    try:
        valid = ctx.verify(
            src, TimedSignedRelayLink.signed_body(src, dst, tau, msg_id, inner), signature
        )
    except ProtocolError:
        valid = False
    if not valid:
        return True
    ctx.send(dst, ("trl.fwd", src, dst, tau, msg_id, inner, signature))
    return True
