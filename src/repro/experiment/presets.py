"""Named scenario presets: the paper's figures and tables, plus new workloads.

Each preset is a zero-argument constructor returning a
:class:`~repro.experiment.spec.Sweep`, so ``repro sweep --preset
table1`` and ``Session().sweep("table1")`` mean the same batch.  The
catalog covers:

* ``table1`` / ``table1_large`` — the Section 1 contribution table,
  validated by simulation: every oracle-solvable grid point runs the
  prescribed protocol under the worst-case silent adversary;
* ``fig2`` / ``fig3`` / ``fig4`` / ``impossibility`` — the executable
  impossibility constructions of Lemmas 5, 7, 13;
* ``equivocation`` — Lemma-style split-view equivocation across the
  four broadcast substrates (the canned ``reverse_even`` mutator);
* ``frontier`` — an oracle-guided *adaptive* workload: only the
  boundary points where solvability flips, each validated by a run on
  the solvable side;
* ``roommates`` — the Section 6 single-set extension across ``n``;
* ``gs_ensemble`` / ``incomplete_ensemble`` — offline ensemble sweeps
  (random stable matchings à la Mertens; incomplete lists à la [13]);
* ``lossy`` — link drops (kernel-injected omission faults) combined
  with the worst-case silent adversary: a graceful-degradation study;
* ``rotations`` — the lattice-position study: which element of the
  stable-matching lattice the protocols select, including steering
  equivocators (``steer_l_optimal``/``steer_r_optimal``);
* ``smoke`` — a six-spec sanity batch for CI.
"""

from __future__ import annotations

from typing import Callable

from repro.core.problem import Setting
from repro.core.solvability import cached_is_solvable
from repro.errors import SolvabilityError
from repro.experiment.spec import (
    AdversarySpec,
    LinkSpec,
    ProfileSpec,
    ScenarioSpec,
    Sweep,
)
from repro.net.topology import TOPOLOGY_NAMES

__all__ = ["PRESETS", "preset", "preset_names"]


def _table1(ks: tuple[int, ...]) -> Sweep:
    return Sweep.grid(
        topologies=TOPOLOGY_NAMES,
        auths=(False, True),
        ks=ks,
        budgets="solvable",
        seeds=(7,),
        adversary=AdversarySpec(kind="silent"),
    )


def table1() -> Sweep:
    """The contribution table at ``k`` = 2, 3 (the tier-1 workload)."""
    return _table1((2, 3))


def table1_large() -> Sweep:
    """The contribution table at ``k`` = 2-4 (the benchmark workload)."""
    return _table1((2, 3, 4))


def _attacks(*lemmas: str) -> Sweep:
    return Sweep.of(
        *(ScenarioSpec(family="attack", attack=lemma) for lemma in lemmas)
    )


def fig2() -> Sweep:
    """Lemma 5 / Fig. 2: the 12-node duplication attack."""
    return _attacks("lemma5")


def fig3() -> Sweep:
    """Lemma 7 / Fig. 3: the 8-cycle attack."""
    return _attacks("lemma7")


def fig4() -> Sweep:
    """Lemma 13 / Fig. 4: the two-group simulation attack."""
    return _attacks("lemma13")


def impossibility() -> Sweep:
    """All three impossibility constructions, in paper order."""
    return _attacks("lemma5", "lemma7", "lemma13")


def equivocation() -> Sweep:
    """Split-view equivocation against each broadcast substrate."""
    points = (
        ("fully_connected", True, 3, 1, 1),
        ("fully_connected", False, 4, 1, 1),
        ("bipartite", True, 3, 1, 1),
        ("one_sided", False, 4, 1, 1),
    )
    return Sweep.of(
        *(
            ScenarioSpec(
                topology=topo,
                authenticated=auth,
                k=k,
                tL=tL,
                tR=tR,
                profile=ProfileSpec(seed=3),
                adversary=AdversarySpec(
                    kind="equivocate", corrupt=("R0",), mutator="reverse_even"
                ),
            )
            for topo, auth, k, tL, tR in points
        )
    )


def frontier(ks: tuple[int, ...] = (3, 4)) -> Sweep:
    """The solvability frontier, found adaptively via the oracle.

    For each topology/crypto/``k``/``tL``, walk ``tR`` upward and keep
    only the last solvable point before a flip (or the extreme ``tR``
    when nothing flips) — then validate each frontier point by a full
    run under the worst-case silent adversary.  This is the paper's
    "tight" claim as a workload: the protocols work right up to the
    boundary.
    """
    specs: list[ScenarioSpec] = []
    for topology in TOPOLOGY_NAMES:
        for auth in (False, True):
            for k in ks:
                for tL in range(k + 1):
                    last_solvable: int | None = None
                    for tR in range(k + 1):
                        if cached_is_solvable(Setting(topology, auth, k, tL, tR)).solvable:
                            last_solvable = tR
                        elif last_solvable is not None:
                            break
                    if last_solvable is None:
                        continue
                    specs.append(
                        ScenarioSpec(
                            name=f"frontier/{topology}/{'auth' if auth else 'unauth'}"
                            f"/k{k}/tL{tL}/tR{last_solvable}",
                            topology=topology,
                            authenticated=auth,
                            k=k,
                            tL=tL,
                            tR=last_solvable,
                            profile=ProfileSpec(seed=7),
                            adversary=AdversarySpec(kind="silent"),
                        )
                    )
    return Sweep.of(*specs)


def roommates() -> Sweep:
    """The Section 6 roommates extension across ``n``, one silent peer."""
    return Sweep.of(
        *(
            ScenarioSpec(
                family="roommates",
                n=n,
                t=1,
                authenticated=True,
                profile=ProfileSpec(seed=seed),
                adversary=AdversarySpec(kind="silent"),
            )
            for n in (4, 6, 8)
            for seed in (1, 2)
        )
    )


def gs_ensemble() -> Sweep:
    """Offline Gale-Shapley over a random ensemble (proposal statistics)."""
    return Sweep.of(
        *(
            ScenarioSpec(
                family="offline",
                algorithm="gale_shapley",
                k=k,
                profile=ProfileSpec(kind=kind, seed=seed),
            )
            for k in (10, 20, 40)
            for kind in ("random", "master_list")
            for seed in range(5)
        )
    )


def incomplete_ensemble() -> Sweep:
    """Offline incomplete-lists ensemble: matched-set size vs acceptance."""
    return Sweep.of(
        *(
            ScenarioSpec(
                family="offline",
                algorithm="incomplete",
                k=k,
                profile=ProfileSpec(
                    kind="incomplete_random", acceptance=acceptance, seed=seed
                ),
            )
            for k in (10, 20)
            for acceptance in (0.25, 0.5, 0.75)
            for seed in range(5)
        )
    )


def lossy() -> Sweep:
    """Graceful-degradation study: link drops on top of a silent adversary.

    The paper's protocols assume lossless synchronous channels; this
    preset measures what actually breaks when the channel loses
    messages (Appendix A.6's omission regime, injected at the runtime
    kernel).  Each point combines the worst-case silent adversary with
    an independent per-message drop probability; ``p=0`` anchors the
    lossless baseline and the range spans the observed cliff (the
    signed-relay substrate shrugs off ~30% loss; symmetry starts
    breaking near 50%).  Failures here are the *object of study*, not
    regressions — aggregate ``ok`` by ``link`` to see the cliff.
    """
    specs: list[ScenarioSpec] = []
    for probability in (0.0, 0.1, 0.3, 0.5):
        for seed in (7, 11):
            link = (
                LinkSpec(kind="random", probability=probability, seed=seed)
                if probability > 0.0
                else None
            )
            specs.append(
                ScenarioSpec(
                    topology="fully_connected",
                    authenticated=True,
                    k=3,
                    tL=1,
                    tR=1,
                    profile=ProfileSpec(seed=seed),
                    adversary=AdversarySpec(kind="silent", link=link),
                )
            )
    return Sweep.of(*specs)


def rotations() -> Sweep:
    """Lattice-position study: which stable matching do the protocols pick?

    Fault-free, honest-adversary, silent, and steering-equivocation
    points whose effective instance is knowable (or whose steering is
    the question), at ``k`` where lattices are non-trivial.  Stamp the
    records with :func:`repro.experiment.lattice_tags.stamp_lattice_positions`
    (or run them through ``POST /v1/run?lattice=1``) and aggregate on
    the ``lattice_position=`` tag: the deterministic protocols should
    sit at ``rot[]`` — the L-optimal element — on every scorable point.
    """
    specs: list[ScenarioSpec] = []
    for k in (3, 4):
        for seed in range(4):
            specs.append(
                ScenarioSpec(
                    k=k,
                    tL=0,
                    tR=0,
                    profile=ProfileSpec(seed=seed),
                    name=f"rotations/fault_free/k{k}/s{seed}",
                    tags=("rotations",),
                )
            )
    for kind in ("honest", "silent"):
        for seed in (5, 6):
            specs.append(
                ScenarioSpec(
                    topology="fully_connected",
                    authenticated=True,
                    k=3,
                    tL=1,
                    tR=1,
                    profile=ProfileSpec(seed=seed),
                    adversary=AdversarySpec(kind=kind),
                    name=f"rotations/{kind}/s{seed}",
                    tags=("rotations",),
                )
            )
    for mutator in ("steer_l_optimal", "steer_r_optimal"):
        specs.append(
            ScenarioSpec(
                topology="fully_connected",
                authenticated=True,
                k=3,
                tL=1,
                tR=1,
                profile=ProfileSpec(seed=7),
                adversary=AdversarySpec(
                    kind="equivocate", corrupt=("L0",), mutator=mutator
                ),
                name=f"rotations/{mutator}",
                tags=("rotations",),
            )
        )
    return Sweep.of(*specs)


def smoke() -> Sweep:
    """A six-spec sanity batch: one of each shape, all fast."""
    return Sweep.of(
        ScenarioSpec(k=2, tL=0, tR=0, name="smoke/fault_free"),
        ScenarioSpec(
            k=2,
            tL=1,
            tR=0,
            adversary=AdversarySpec(kind="silent"),
            name="smoke/silent",
        ),
        ScenarioSpec(
            topology="bipartite",
            authenticated=True,
            k=2,
            tL=1,
            tR=1,
            adversary=AdversarySpec(kind="equivocate", corrupt=("R0",)),
            name="smoke/equivocate",
        ),
        ScenarioSpec(family="attack", attack="lemma7", name="smoke/fig3"),
        ScenarioSpec(
            family="roommates",
            n=4,
            t=1,
            authenticated=True,
            adversary=AdversarySpec(kind="silent"),
            name="smoke/roommates",
        ),
        ScenarioSpec(family="offline", algorithm="gale_shapley", k=8, name="smoke/gs"),
    )


PRESETS: dict[str, Callable[[], Sweep]] = {
    "table1": table1,
    "table1_large": table1_large,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "impossibility": impossibility,
    "equivocation": equivocation,
    "frontier": frontier,
    "roommates": roommates,
    "gs_ensemble": gs_ensemble,
    "incomplete_ensemble": incomplete_ensemble,
    "lossy": lossy,
    "rotations": rotations,
    "smoke": smoke,
}


def preset(name: str) -> Sweep:
    """Resolve a preset name to its sweep."""
    try:
        return PRESETS[name]()
    except KeyError as exc:
        raise SolvabilityError(
            f"unknown preset {name!r}; known: {sorted(PRESETS)}"
        ) from exc


def preset_names() -> tuple[str, ...]:
    """All preset names, sorted."""
    return tuple(sorted(PRESETS))
