"""Checkpoint/resume bookkeeping for long streaming sweeps.

A multi-hour ensemble killed at 90% used to restart from zero.  A
:class:`SweepCheckpoint` sits next to the run's NDJSON/spill archive and
records how many *specs* (not records — one spec can emit several rows)
have been fully written to the sink.  On restart with the same workload,
:func:`repro.experiment.engine.sweep_into` skips the completed prefix;
paired with an append-mode :class:`~repro.experiment.sinks.NdjsonSink`
(whose ``prepare_ndjson_append`` already repairs a torn tail), the
resumed archive is byte-identical to an uninterrupted run — specs are
deterministic and records always land in spec order, so "first N specs
done" fully describes the archive's contents.

The checkpoint file is small JSON, written atomically (temp +
``os.replace``) after every flushed batch, fingerprinted by a SHA-256
over the ordered spec JSONs: a checkpoint from a *different* workload —
or from different code, since specs pin everything that shapes records —
never resumes, it just starts over.  Successful completion deletes the
file.

Alongside the spec count the checkpoint records the archive's byte
offset at the acknowledged flush (``archive_bytes``, when the sink can
report one).  A kill can land *between* a flush and the checkpoint
update, leaving flushed records the checkpoint never acknowledged —
resuming must first roll the archive back to the acknowledged offset
(``NdjsonSink.rollback``), or those records would appear twice.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Sequence

__all__ = ["SweepCheckpoint", "sweep_fingerprint"]

_SCHEMA = 1


def sweep_fingerprint(specs: Sequence[object]) -> str:
    """SHA-256 over the ordered spec JSONs — the workload's identity."""
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(spec.to_json().encode("utf-8"))  # type: ignore[attr-defined]
        digest.update(b"\n")
    return digest.hexdigest()


class SweepCheckpoint:
    """Completed-spec progress for one (workload, archive) pair.

    Construction loads any existing file: ``completed`` is the number of
    leading specs already flushed (0 when the file is missing, torn,
    from another workload, or out of range).  :meth:`update` persists
    new progress atomically; :meth:`complete` removes the file.
    """

    def __init__(self, path: str, specs: Sequence[object]) -> None:
        self.path = str(path)
        self.total = len(specs)
        self.fingerprint = sweep_fingerprint(specs)
        self.completed, self.archive_bytes = self._load()

    def _load(self) -> "tuple[int, int | None]":
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return 0, None
        if not isinstance(data, dict) or data.get("fingerprint") != self.fingerprint:
            return 0, None
        completed = data.get("completed")
        if not isinstance(completed, int) or not 0 <= completed <= self.total:
            return 0, None
        archive_bytes = data.get("archive_bytes")
        if not isinstance(archive_bytes, int) or archive_bytes < 0:
            archive_bytes = None
        return completed, archive_bytes

    def update(self, completed: int, archive_bytes: "int | None" = None) -> None:
        """Record that the first ``completed`` specs are flushed to the sink."""
        self.completed = completed
        self.archive_bytes = archive_bytes
        payload = {
            "schema": _SCHEMA,
            "fingerprint": self.fingerprint,
            "completed": completed,
            "total": self.total,
        }
        if archive_bytes is not None:
            payload["archive_bytes"] = archive_bytes
        tmp_path = f"{self.path}.tmp-{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, self.path)
        except OSError:
            # Progress tracking is best-effort: a failed write costs
            # re-execution on resume, never correctness.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def complete(self) -> None:
        """The sweep finished: drop the checkpoint."""
        self.completed = self.total
        try:
            os.unlink(self.path)
        except OSError:
            pass
