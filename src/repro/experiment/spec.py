"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, JSON-round-trippable description
of one experiment: which point of the paper's characterization grid to
run (topology, crypto, ``k``, budgets), where the honest inputs come
from (:class:`ProfileSpec`), who misbehaves and how
(:class:`AdversarySpec`), which protocol recipe to force, and the seed.
A :class:`Sweep` is an ordered collection of specs — built literally,
by seed replication, or by expanding the full characterization grid.

Specs carry *no* live objects: everything is strings, numbers, and
party names, so a spec can be archived next to its results, shipped to
a process-pool worker, or diffed across code versions.  The executable
side lives in :mod:`repro.experiment.engine`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.problem import Setting
from repro.core.solvability import RECIPES
from repro.errors import SolvabilityError
from repro.ids import PartyId, left_side, parse_party, right_side
from repro.matching.generators import (
    correlated_profile,
    master_list_profile,
    random_incomplete_profile,
    random_profile,
    random_roommates_preferences,
)
from repro.matching.kernel import solvable_pairs
from repro.matching.preferences import PreferenceProfile
from repro.net.faults import DropRule, after_round_drop, partition_drop, random_drop
from repro.net.topology import TOPOLOGY_NAMES
from repro.runtime.api import RUNTIME_NAMES

__all__ = [
    "ProfileSpec",
    "AdversarySpec",
    "LinkSpec",
    "ScenarioSpec",
    "ExecutorSpec",
    "Sweep",
    "FAMILIES",
    "ADVERSARY_KINDS",
    "LINK_KINDS",
    "PROFILE_KINDS",
    "EXECUTOR_NAMES",
    "worst_case_corruption",
]

FAMILIES = ("bsm", "attack", "roommates", "offline")
ADVERSARY_KINDS = ("silent", "noise", "crash", "honest", "equivocate")
LINK_KINDS = ("random", "partition", "after_round")
PROFILE_KINDS = ("random", "correlated", "master_list", "explicit", "incomplete_random")
#: The engine's executor axis (see :mod:`repro.experiment.engine`):
#: ``serial`` runs specs one at a time in-process, ``batch`` schedules a
#: sweep through one shared-cache round loop, ``process`` fans single
#: specs over a pool, ``parallel`` composes the two — per-worker batched
#: shards over per-worker caches — and ``hosts`` shards across worker
#: *endpoints* (subprocess/SSH/HTTP; see :mod:`repro.runtime.remote`).
EXECUTOR_NAMES = ("serial", "process", "batch", "parallel", "hosts")

#: Sentinel for "corrupt the full budget": the first ``tL`` left and
#: first ``tR`` right parties.
BUDGET = "budget"


def worst_case_corruption(setting: Setting) -> tuple[PartyId, ...]:
    """The canonical full-budget corruption set for a setting."""
    return tuple(left_side(setting.k)[: setting.tL]) + tuple(
        right_side(setting.k)[: setting.tR]
    )


def _lists_to_strings(lists: Mapping) -> dict[str, tuple[str, ...]]:
    return {
        str(party): tuple(str(c) for c in candidates)
        for party, candidates in sorted(lists.items(), key=lambda kv: str(kv[0]))
    }


def _lists_from_strings(lists: Mapping) -> dict[PartyId, tuple[PartyId, ...]]:
    return {
        parse_party(party): tuple(parse_party(c) for c in candidates)
        for party, candidates in lists.items()
    }


@dataclass(frozen=True)
class ProfileSpec:
    """Where a scenario's honest inputs come from.

    Kinds:

    * ``"random"`` — uniform profile from ``seed``;
    * ``"correlated"`` — per-side master lists perturbed by
      ``similarity`` (Khanchandani-Wattenhofer workload);
    * ``"master_list"`` — fully correlated (maximal contention);
    * ``"explicit"`` — the lists are spelled out (party names as
      strings, so the spec stays JSON-serializable);
    * ``"incomplete_random"`` — incomplete lists, each candidate kept
      with probability ``acceptance`` (offline family only).
    """

    kind: str = "random"
    seed: int = 0
    similarity: float = 0.5
    acceptance: float = 0.5
    lists: Mapping[str, tuple[str, ...]] | None = None

    def __post_init__(self) -> None:
        if self.kind not in PROFILE_KINDS:
            raise SolvabilityError(
                f"unknown profile kind {self.kind!r}; expected one of {PROFILE_KINDS}"
            )
        if self.kind == "explicit" and not self.lists:
            raise SolvabilityError("explicit profiles need non-empty lists")
        # Canonicalize knobs other kinds ignore, so spec equality and the
        # JSON round-trip agree.
        if self.kind != "correlated":
            object.__setattr__(self, "similarity", 0.5)
        if self.kind != "incomplete_random":
            object.__setattr__(self, "acceptance", 0.5)
        if self.lists is not None:
            object.__setattr__(
                self,
                "lists",
                {p: tuple(c) for p, c in sorted(self.lists.items())},
            )

    @classmethod
    def explicit(cls, profile: PreferenceProfile | Mapping) -> "ProfileSpec":
        """Freeze a concrete profile (or PartyId mapping) into a spec."""
        lists = profile.lists if isinstance(profile, PreferenceProfile) else profile
        return cls(kind="explicit", lists=_lists_to_strings(lists))

    def build(self, k: int):
        """Materialize the profile for side size ``k``."""
        if self.kind == "random":
            return random_profile(k, self.seed)
        if self.kind == "correlated":
            return correlated_profile(k, self.similarity, self.seed)
        if self.kind == "master_list":
            return master_list_profile(k, self.seed)
        if self.kind == "incomplete_random":
            return random_incomplete_profile(k, self.acceptance, self.seed)
        return PreferenceProfile.from_dict(_lists_from_strings(self.lists))

    def build_roommates(self, parties: Sequence[PartyId]) -> dict[PartyId, tuple[PartyId, ...]]:
        """Materialize single-set rankings for the roommates family."""
        if self.kind == "explicit":
            return _lists_from_strings(self.lists)
        return random_roommates_preferences(parties, self.seed)

    def to_dict(self) -> dict:
        data: dict = {"kind": self.kind, "seed": self.seed}
        if self.kind == "correlated":
            data["similarity"] = self.similarity
        if self.kind == "incomplete_random":
            data["acceptance"] = self.acceptance
        if self.lists is not None:
            data["lists"] = {p: list(c) for p, c in self.lists.items()}
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ProfileSpec":
        return cls(
            kind=data.get("kind", "random"),
            seed=int(data.get("seed", 0)),
            similarity=float(data.get("similarity", 0.5)),
            acceptance=float(data.get("acceptance", 0.5)),
            lists={p: tuple(c) for p, c in data["lists"].items()}
            if data.get("lists") is not None
            else None,
        )


@dataclass(frozen=True)
class LinkSpec:
    """Declarative link faults: what the *channels* lose.

    Orthogonal to party corruption — a :class:`AdversarySpec` can
    combine behavior faults (who lies) with link faults (what the
    network eats).  Kinds, realized by :mod:`repro.net.faults` rules in
    the runtime kernel's delivery path:

    * ``"random"`` — each message dropped independently with
      ``probability`` (seeded, deterministic per ``(src, dst, round)``);
    * ``"partition"`` — every cross-side message dropped (the canonical
      L/R partition);
    * ``"after_round"`` — lossless until ``cutoff``, then total loss.
    """

    kind: str = "random"
    probability: float = 0.1
    seed: int = 0
    cutoff: int = 0

    def __post_init__(self) -> None:
        if self.kind not in LINK_KINDS:
            raise SolvabilityError(
                f"unknown link fault kind {self.kind!r}; expected one of {LINK_KINDS}"
            )
        if self.kind == "random" and not (0.0 <= self.probability <= 1.0):
            raise SolvabilityError(
                f"drop probability must lie in [0, 1], got {self.probability}"
            )
        if self.kind == "after_round" and self.cutoff < 0:
            raise SolvabilityError(f"cutoff must be >= 0, got {self.cutoff}")
        # Canonicalize the knobs other kinds ignore, so spec equality and
        # the JSON round-trip agree (mirrors ProfileSpec/AdversarySpec).
        if self.kind != "random":
            object.__setattr__(self, "probability", 0.1)
            object.__setattr__(self, "seed", 0)
        if self.kind != "after_round":
            object.__setattr__(self, "cutoff", 0)

    def describe(self) -> str:
        """A short, stable label (used in record columns)."""
        if self.kind == "random":
            return f"random(p={self.probability:g},seed={self.seed})"
        if self.kind == "after_round":
            return f"after_round({self.cutoff})"
        return "partition"

    def drop_rule(self, setting: Setting) -> DropRule:
        """The executable :mod:`repro.net.faults` rule for ``setting``."""
        if self.kind == "random":
            return random_drop(self.probability, seed=self.seed)
        if self.kind == "after_round":
            return after_round_drop(self.cutoff)
        return partition_drop(left_side(setting.k), right_side(setting.k))

    def to_dict(self) -> dict:
        data: dict = {"kind": self.kind}
        if self.kind == "random":
            data["probability"] = self.probability
            data["seed"] = self.seed
        if self.kind == "after_round":
            data["cutoff"] = self.cutoff
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "LinkSpec":
        return cls(
            kind=data.get("kind", "random"),
            probability=float(data.get("probability", 0.1)),
            seed=int(data.get("seed", 0)),
            cutoff=int(data.get("cutoff", 0)),
        )


@dataclass(frozen=True)
class AdversarySpec:
    """Who misbehaves and how — fully declarative.

    ``corrupt`` is either the sentinel ``"budget"`` (the canonical
    worst-case set: first ``tL`` left + first ``tR`` right parties) or
    an explicit tuple of party names (``("L0", "R2")``) — possibly
    empty, for link-fault-only adversaries.  ``mutator`` names a canned
    mutator from :mod:`repro.adversary.mutators` and is only meaningful
    for ``kind="equivocate"``.  ``link`` adds channel-level faults
    (:class:`LinkSpec`) on top of — or instead of — party corruption.
    """

    kind: str = "silent"
    corrupt: str | tuple[str, ...] = BUDGET
    seed: int = 0
    crash_round: int = 2
    mutator: str | None = None
    link: LinkSpec | None = None

    def __post_init__(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise SolvabilityError(
                f"unknown adversary kind {self.kind!r}; expected one of {ADVERSARY_KINDS}"
            )
        if self.corrupt != BUDGET:
            if isinstance(self.corrupt, str):
                raise SolvabilityError(
                    f"corrupt must be {BUDGET!r} or a tuple of party names, "
                    f"got the string {self.corrupt!r} (did you mean ({self.corrupt!r},)?)"
                )
            object.__setattr__(self, "corrupt", tuple(str(p) for p in self.corrupt))
        if self.mutator is not None and self.kind != "equivocate":
            raise SolvabilityError("mutator is only meaningful for kind='equivocate'")
        # Canonicalize the knob other kinds ignore, so spec equality and
        # the JSON round-trip agree (mirrors ProfileSpec).
        if self.kind != "crash":
            object.__setattr__(self, "crash_round", 2)

    def corrupted_parties(self, setting: Setting) -> tuple[PartyId, ...]:
        """The concrete corruption set under ``setting``."""
        if self.corrupt == BUDGET:
            return worst_case_corruption(setting)
        return tuple(parse_party(p) for p in self.corrupt)

    def to_dict(self) -> dict:
        data: dict = {"kind": self.kind, "seed": self.seed}
        data["corrupt"] = (
            self.corrupt if self.corrupt == BUDGET else list(self.corrupt)
        )
        if self.kind == "crash":
            data["crash_round"] = self.crash_round
        if self.mutator is not None:
            data["mutator"] = self.mutator
        if self.link is not None:
            data["link"] = self.link.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "AdversarySpec":
        corrupt = data.get("corrupt", BUDGET)
        link = data.get("link")
        return cls(
            kind=data.get("kind", "silent"),
            corrupt=corrupt if corrupt == BUDGET else tuple(corrupt),
            seed=int(data.get("seed", 0)),
            crash_round=int(data.get("crash_round", 2)),
            mutator=data.get("mutator"),
            link=LinkSpec.from_dict(link) if link is not None else None,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment, across all workload families.

    Families:

    * ``"bsm"`` — one end-to-end byzantine-stable-matching run in a
      setting of the characterization grid (the default);
    * ``"attack"`` — one of the paper's twisted-system impossibility
      constructions (``attack`` names the lemma), producing one record
      per attack scenario;
    * ``"roommates"`` — the Section 6 single-set extension (``n``
      parties, ``t`` byzantine);
    * ``"offline"`` — no network at all: run the named offline
      ``algorithm`` (``gale_shapley`` or ``incomplete``) on a generated
      instance, for Mertens-style ensemble sweeps.

    ``runtime`` selects the :mod:`repro.runtime` executor for bsm runs
    (``"lockstep"`` — the sequential reference and default; ``"event"``
    — asyncio scheduling; ``"batch"`` — batched semantics, grouped into
    one shared-cache round loop by the engine's batch executor).  All
    three produce byte-identical records, so the knob never shapes the
    result — it is deliberately excluded from derived labels.
    """

    name: str = ""
    family: str = "bsm"
    topology: str = "fully_connected"
    authenticated: bool = True
    k: int = 3
    tL: int = 0
    tR: int = 0
    profile: ProfileSpec = field(default_factory=ProfileSpec)
    adversary: AdversarySpec | None = None
    recipe: str | None = None
    max_rounds: int | None = None
    record_trace: bool = False
    runtime: str = "lockstep"
    attack: str | None = None
    n: int = 0
    t: int = 0
    algorithm: str = "gale_shapley"
    #: Free-form provenance tags, stamped onto every record this spec
    #: produces (the conformance harness uses them to tie a record back
    #: to its generated ensemble: ``("conform", "seed0", "ix12")``).
    #: Never shape the run or the label.
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", tuple(str(t) for t in self.tags))
        if self.family not in FAMILIES:
            raise SolvabilityError(
                f"unknown family {self.family!r}; expected one of {FAMILIES}"
            )
        if self.runtime not in RUNTIME_NAMES:
            raise SolvabilityError(
                f"unknown runtime {self.runtime!r}; expected one of {RUNTIME_NAMES}"
            )
        if self.family == "attack":
            if self.attack not in ("lemma5", "lemma7", "lemma13"):
                raise SolvabilityError(
                    f"attack specs need attack in lemma5/lemma7/lemma13, got {self.attack!r}"
                )
        elif self.attack is not None:
            raise SolvabilityError("attack is only meaningful for family='attack'")
        if self.family == "roommates" and self.n <= 0:
            raise SolvabilityError("roommates specs need n > 0")
        if self.family == "offline" and self.algorithm not in ("gale_shapley", "incomplete"):
            raise SolvabilityError(
                f"offline algorithm must be gale_shapley or incomplete, got {self.algorithm!r}"
            )
        if self.profile.kind == "incomplete_random" and self.family != "offline":
            raise SolvabilityError(
                "incomplete_random profiles only run in the offline family "
                "(the protocol stack needs complete lists)"
            )
        if self.family == "roommates" and self.profile.kind not in ("random", "explicit"):
            raise SolvabilityError(
                f"roommates profiles must be random or explicit, got {self.profile.kind!r} "
                "(two-sided workload generators do not apply to single-set rankings)"
            )
        if self.family == "bsm":
            if self.topology not in TOPOLOGY_NAMES:
                raise SolvabilityError(
                    f"unknown topology {self.topology!r}; expected one of {TOPOLOGY_NAMES}"
                )
            if self.recipe is not None and self.recipe not in RECIPES:
                raise SolvabilityError(
                    f"unknown recipe {self.recipe!r}; expected one of {RECIPES}"
                )
            if not (0 <= self.tL <= self.k and 0 <= self.tR <= self.k):
                raise SolvabilityError(
                    f"corruption budgets must lie in [0, k={self.k}], "
                    f"got tL={self.tL}, tR={self.tR}"
                )
        # Canonicalize the fields each family ignores (mirrors ProfileSpec/
        # AdversarySpec), so spec equality and the JSON round-trip agree.
        ignored: dict[str, object] = {}
        if self.family == "attack":
            ignored = dict(
                topology="fully_connected", authenticated=True, k=3, tL=0, tR=0,
                recipe=None, max_rounds=None, record_trace=False,
                runtime="lockstep", n=0, t=0, algorithm="gale_shapley",
            )
        elif self.family == "roommates":
            ignored = dict(
                topology="fully_connected", k=3, tL=0, tR=0,
                recipe=None, record_trace=False, runtime="lockstep",
                algorithm="gale_shapley",
            )
        elif self.family == "offline":
            ignored = dict(
                topology="fully_connected", authenticated=True, tL=0, tR=0,
                recipe=None, max_rounds=None, record_trace=False,
                runtime="lockstep", n=0, t=0, adversary=None,
            )
        else:
            ignored = dict(n=0, t=0, algorithm="gale_shapley")
        for field_name, default in ignored.items():
            object.__setattr__(self, field_name, default)

    # -- derived views --------------------------------------------------------

    def setting(self) -> Setting:
        """The characterization-grid point this spec runs at (bsm family)."""
        return Setting(self.topology, self.authenticated, self.k, self.tL, self.tR)

    def label(self) -> str:
        """``name`` if given, else a stable derived label.

        Derived labels include every run-shaping field (adversary kind,
        forced recipe), so two distinct unnamed specs never collide.
        """
        if self.name:
            return self.name
        extra = ""
        if self.profile.kind == "correlated":
            extra += f"/correlated{self.profile.similarity:g}"
        elif self.profile.kind == "incomplete_random":
            extra += f"/accept{self.profile.acceptance:g}"
        elif self.profile.kind != "random":
            extra += f"/{self.profile.kind}"
        if self.adversary is not None:
            extra += f"/{self.adversary.kind}"
            if self.adversary.link is not None:
                extra += f"/lossy-{self.adversary.link.describe()}"
        if self.recipe is not None:
            extra += f"/{self.recipe}"
        if self.family == "attack":
            return f"attack/{self.attack}"
        if self.family == "roommates":
            crypto = "auth" if self.authenticated else "unauth"
            return f"roommates/{crypto}/n{self.n}/t{self.t}/s{self.profile.seed}{extra}"
        if self.family == "offline":
            return f"offline/{self.algorithm}/k{self.k}/s{self.profile.seed}{extra}"
        crypto = "auth" if self.authenticated else "unauth"
        return (
            f"{self.topology}/{crypto}/k{self.k}/t{self.tL},{self.tR}"
            f"/s{self.profile.seed}{extra}"
        )

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """A copy whose profile (and adversary, if any) use ``seed``."""
        adversary = (
            replace(self.adversary, seed=seed) if self.adversary is not None else None
        )
        return replace(
            self, profile=replace(self.profile, seed=seed), adversary=adversary
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        data: dict = {"family": self.family}
        if self.name:
            data["name"] = self.name
        if self.tags:
            data["tags"] = list(self.tags)
        if self.family == "attack":
            data["attack"] = self.attack
            # Attacks ignore profile/adversary, but serialize them anyway
            # so the round trip is exact for any constructible spec.
            data["profile"] = self.profile.to_dict()
            if self.adversary is not None:
                data["adversary"] = self.adversary.to_dict()
            return data
        data["profile"] = self.profile.to_dict()
        if self.adversary is not None:
            data["adversary"] = self.adversary.to_dict()
        if self.family == "roommates":
            data.update(n=self.n, t=self.t, authenticated=self.authenticated)
            if self.max_rounds is not None:
                data["max_rounds"] = self.max_rounds
            return data
        if self.family == "offline":
            data.update(algorithm=self.algorithm, k=self.k)
            return data
        data.update(
            topology=self.topology,
            authenticated=self.authenticated,
            k=self.k,
            tL=self.tL,
            tR=self.tR,
        )
        if self.recipe is not None:
            data["recipe"] = self.recipe
        if self.max_rounds is not None:
            data["max_rounds"] = self.max_rounds
        if self.record_trace:
            data["record_trace"] = True
        if self.runtime != "lockstep":
            data["runtime"] = self.runtime
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        adversary = data.get("adversary")
        profile = data.get("profile")
        return cls(
            name=data.get("name", ""),
            family=data.get("family", "bsm"),
            topology=data.get("topology", "fully_connected"),
            authenticated=bool(data.get("authenticated", True)),
            k=int(data.get("k", 3)),
            tL=int(data.get("tL", 0)),
            tR=int(data.get("tR", 0)),
            profile=ProfileSpec.from_dict(profile) if profile is not None else ProfileSpec(),
            adversary=AdversarySpec.from_dict(adversary) if adversary is not None else None,
            recipe=data.get("recipe"),
            max_rounds=data.get("max_rounds"),
            record_trace=bool(data.get("record_trace", False)),
            runtime=data.get("runtime", "lockstep"),
            attack=data.get("attack"),
            n=int(data.get("n", 0)),
            t=int(data.get("t", 0)),
            algorithm=data.get("algorithm", "gale_shapley"),
            tags=tuple(data.get("tags", ())),
        )

    def to_json(self) -> str:
        """A canonical JSON encoding (sorted keys, compact)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ExecutorSpec:
    """Declarative execution plane: how a sweep should be driven.

    Where :class:`ScenarioSpec` describes *what* to run, an
    ``ExecutorSpec`` pins *how*: the executor axis (one of
    :data:`EXECUTOR_NAMES`), the worker count for the pool-backed
    executors, the worker endpoints for the ``hosts`` executor (each a
    :mod:`repro.runtime.remote` host string — ``"local"``,
    ``"ssh:user@box"``, or ``"http://host:port"``), and whether workers
    warm-start their per-shard :class:`~repro.runtime.ExecutionCache`
    from a seed of the parent's encode-memo tables.  Like every spec it
    is JSON-round-trippable, so a bench workload or an archived
    experiment can pin its execution plane next to its scenarios.  The
    executor never shapes results — records stay byte-identical across
    all five planes.
    """

    name: str = "serial"
    workers: int | None = None
    warm_cache: bool = False
    hosts: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.name not in EXECUTOR_NAMES:
            raise SolvabilityError(
                f"unknown executor {self.name!r}; expected one of {EXECUTOR_NAMES}"
            )
        if self.hosts is not None:
            object.__setattr__(self, "hosts", tuple(str(host) for host in self.hosts))
        if self.workers is not None and self.workers < 1:
            raise SolvabilityError(f"workers must be >= 1, got {self.workers}")
        if self.name not in ("process", "parallel") and self.workers is not None:
            raise SolvabilityError(
                f"workers only applies to the pool-backed executors, not {self.name!r}"
            )
        if self.warm_cache and self.name not in ("parallel", "hosts"):
            raise SolvabilityError(
                "warm_cache is only meaningful for the parallel and hosts "
                "executors (the other planes share one in-process cache or none)"
            )
        if self.name == "hosts":
            if not self.hosts:
                raise SolvabilityError(
                    "the hosts executor needs at least one host endpoint "
                    '(e.g. hosts=("local", "local"))'
                )
            for host in self.hosts:
                if not host:
                    raise SolvabilityError("host endpoints must be non-empty strings")
        elif self.hosts is not None:
            raise SolvabilityError(
                f"hosts only applies to the hosts executor, not {self.name!r}"
            )

    def to_dict(self) -> dict:
        data: dict = {"name": self.name}
        if self.workers is not None:
            data["workers"] = self.workers
        if self.warm_cache:
            data["warm_cache"] = True
        if self.hosts is not None:
            data["hosts"] = list(self.hosts)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExecutorSpec":
        workers = data.get("workers")
        hosts = data.get("hosts")
        return cls(
            name=data.get("name", "serial"),
            workers=int(workers) if workers is not None else None,
            warm_cache=bool(data.get("warm_cache", False)),
            hosts=tuple(str(host) for host in hosts) if hosts is not None else None,
        )


@dataclass(frozen=True)
class Sweep:
    """An ordered batch of scenarios, ready for the engine.

    Construct literally (``Sweep.of(spec_a, spec_b)``), by seed
    replication (:meth:`seeds`), or by expanding the characterization
    grid (:meth:`grid`).  Sweeps concatenate with ``+`` and serialize
    like their specs.
    """

    specs: tuple[ScenarioSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def of(cls, *specs: ScenarioSpec) -> "Sweep":
        """A sweep of exactly these specs, in order."""
        return cls(specs=specs)

    @classmethod
    def seeds(cls, spec: ScenarioSpec, seeds: Iterable[int]) -> "Sweep":
        """Replicate one spec across profile/adversary seeds."""
        return cls(specs=tuple(spec.with_seed(seed) for seed in seeds))

    @classmethod
    def grid(
        cls,
        topologies: Sequence[str] = TOPOLOGY_NAMES,
        auths: Sequence[bool] = (False, True),
        ks: Sequence[int] = (3,),
        budgets: str | Sequence[tuple[int, int]] = "solvable",
        seeds: Sequence[int] = (7,),
        adversary: AdversarySpec | None = AdversarySpec(kind="silent"),
        profile_kind: str = "random",
        recipe: str | None = None,
    ) -> "Sweep":
        """Expand (topology, auth, k, tL, tR, seed) into scenario specs.

        ``budgets="solvable"`` keeps only grid points the oracle deems
        solvable (the Table 1 workload); ``"all"`` keeps every point
        (unsolvable points yield not-run records unless a recipe is
        forced); an explicit list pins the budget pairs — each pair is
        used at every ``k`` it fits (``tL, tR <= k``), and a pair no
        ``k`` can use is an error.
        """
        if not isinstance(budgets, str):
            budgets = [(int(tL), int(tR)) for tL, tR in budgets]
            max_k = max(ks, default=0)
            for tL, tR in budgets:
                if not (0 <= tL <= max_k and 0 <= tR <= max_k):
                    raise SolvabilityError(
                        f"budget pair (tL={tL}, tR={tR}) fits no k in {tuple(ks)}"
                    )
        specs: list[ScenarioSpec] = []
        for topology in topologies:
            for auth in auths:
                for k in ks:
                    if isinstance(budgets, str):
                        if budgets == "solvable":
                            # Batched closed-form evaluation of the whole
                            # (k+1)^2 grid in one pass; same lexicographic
                            # order and verdicts as filtering point by
                            # point through the oracle (pinned by
                            # tests/test_kernel.py).
                            pairs = list(solvable_pairs(topology, auth, k))
                        elif budgets == "all":
                            pairs = [
                                (tL, tR) for tL in range(k + 1) for tR in range(k + 1)
                            ]
                        else:
                            raise SolvabilityError(
                                f"budgets must be 'solvable', 'all', or pairs, got {budgets!r}"
                            )
                    else:
                        pairs = [(tL, tR) for tL, tR in budgets if tL <= k and tR <= k]
                    for tL, tR in pairs:
                        for seed in seeds:
                            if tL or tR:
                                point_adversary = adversary
                            elif adversary is not None and adversary.link is not None:
                                # Zero-budget point, but the adversary carries
                                # link faults: keep the channel faults, drop
                                # the (empty anyway) corruption set.
                                point_adversary = replace(adversary, corrupt=())
                            else:
                                point_adversary = None
                            specs.append(
                                ScenarioSpec(
                                    topology=topology,
                                    authenticated=auth,
                                    k=k,
                                    tL=tL,
                                    tR=tR,
                                    profile=ProfileSpec(kind=profile_kind, seed=seed),
                                    adversary=point_adversary,
                                    recipe=recipe,
                                )
                            )
        return cls(specs=tuple(specs))

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __add__(self, other: "Sweep") -> "Sweep":
        return Sweep(specs=self.specs + tuple(other))

    def to_dict(self) -> dict:
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Sweep":
        return cls(specs=tuple(ScenarioSpec.from_dict(s) for s in data["specs"]))

    def to_json(self) -> str:
        """Canonical JSON for the whole batch."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        return cls.from_dict(json.loads(text))
