"""The experiment layer: declarative scenarios, a batch engine, one façade.

This package is the public face of the library for anything beyond a
single hand-wired run:

* :mod:`repro.experiment.spec` — :class:`ScenarioSpec` and friends:
  declarative, JSON-round-trippable descriptions of runs and
  :class:`Sweep` batches;
* :mod:`repro.experiment.records` — the columnar
  :class:`RunRecordSet` a sweep returns, with aggregation and CSV/JSON
  export;
* :mod:`repro.experiment.engine` — :class:`Engine` (serial or
  process-pool execution with memoized verdicts and keyrings) and
  :class:`Session`, the façade every CLI command, benchmark, and
  example routes through;
* :mod:`repro.experiment.presets` — named sweeps covering the paper's
  table and figures plus new workloads (equivocation, the solvability
  frontier, roommates, offline ensembles);
* :mod:`repro.experiment.sinks` — streaming :class:`RecordSink`
  consumers (memory, NDJSON append/spill, incremental aggregation)
  that :func:`sweep_into` and :func:`stream_sweep` write into, so
  ensembles scale past memory;
* :mod:`repro.experiment.compat` — deprecation shims for the old
  free-function surface.
"""

from repro.experiment.engine import (
    EXECUTORS,
    Engine,
    Session,
    execute_spec,
    stream_sweep,
    sweep_into,
)
from repro.experiment.presets import PRESETS, preset, preset_names
from repro.experiment.records import COLUMNS, RunRecord, RunRecordSet, column_value
from repro.experiment.sinks import (
    AggregateSink,
    MemorySink,
    NdjsonSink,
    NullSink,
    RecordSink,
    SpillSink,
    StreamSink,
    TeeSink,
)
from repro.experiment.spec import (
    AdversarySpec,
    ExecutorSpec,
    LinkSpec,
    ProfileSpec,
    ScenarioSpec,
    Sweep,
    worst_case_corruption,
)

__all__ = [
    "ScenarioSpec",
    "ProfileSpec",
    "AdversarySpec",
    "LinkSpec",
    "ExecutorSpec",
    "Sweep",
    "RunRecord",
    "RunRecordSet",
    "Engine",
    "Session",
    "EXECUTORS",
    "execute_spec",
    "stream_sweep",
    "sweep_into",
    "COLUMNS",
    "column_value",
    "RecordSink",
    "MemorySink",
    "StreamSink",
    "NdjsonSink",
    "SpillSink",
    "AggregateSink",
    "TeeSink",
    "NullSink",
    "PRESETS",
    "preset",
    "preset_names",
    "worst_case_corruption",
]
