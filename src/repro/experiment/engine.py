"""The batch engine: execute one spec, or thousands, on any executor.

Layering:

* :func:`execute_spec` — the pure function from a
  :class:`~repro.experiment.spec.ScenarioSpec` to its
  :class:`~repro.experiment.records.RunRecord` rows.  Deterministic:
  every source of randomness is seeded by the spec, and process-level
  caches only memoize pure values (solvability verdicts, keyrings);
* executors — ``"serial"`` runs in-process, ``"process"`` fans the
  specs over a ``concurrent.futures`` process pool (specs travel as
  JSON dictionaries, so workers share nothing with the parent).  Both
  return records in spec order, so a sweep's output is byte-identical
  whichever executor ran it;
* :class:`Engine` — batch execution plus adaptive sweeps (run, refine,
  repeat);
* :class:`Session` — the user-facing façade: presets, single runs with
  full reports, sweeps, and the memoized oracle.  Every CLI command,
  benchmark, and example routes through a session.
"""

from __future__ import annotations

import concurrent.futures
import functools
import os
import time
from typing import Callable, Iterable, Sequence

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import BSMReport, make_adversary, run_bsm
from repro.core.solvability import SolvabilityVerdict, is_solvable
from repro.crypto.signatures import KeyRing
from repro.errors import SolvabilityError
from repro.experiment.records import RunRecord, RunRecordSet
from repro.experiment.spec import ScenarioSpec, Sweep
from repro.ids import all_parties

__all__ = [
    "EXECUTORS",
    "execute_spec",
    "cached_verdict",
    "cached_keyring",
    "Engine",
    "Session",
]

EXECUTORS = ("serial", "process")


def _implied_executor(executor: str | None, workers: int | None) -> str:
    """An unspecified executor defaults to serial — unless the caller
    asked for workers, which only the process pool can honor."""
    if executor is not None:
        return executor
    return "process" if workers is not None else "serial"


# -- memoized pure values (per process; workers build their own) ---------------


@functools.lru_cache(maxsize=4096)
def cached_verdict(setting: Setting) -> SolvabilityVerdict:
    """The solvability oracle, memoized across runs."""
    return is_solvable(setting)


@functools.lru_cache(maxsize=64)
def cached_keyring(k: int) -> KeyRing:
    """One PKI per side size, shared by every authenticated run.

    A :class:`KeyRing` is immutable after construction, so reusing it
    across runs is safe and skips ``2k`` key derivations per run.
    """
    return KeyRing(all_parties(k))


# -- spec execution ------------------------------------------------------------


def _build_bsm_run(spec: ScenarioSpec):
    """Materialize one bsm spec: ``(setting, verdict, instance, adversary,
    adversary_kind, corrupted)`` — shared by the record and report paths."""
    setting = spec.setting()
    verdict = cached_verdict(setting)
    instance = BSMInstance(setting, spec.profile.build(spec.k))
    adversary = None
    adversary_kind = "none"
    corrupted: tuple = ()
    if spec.adversary is not None:
        corrupted = spec.adversary.corrupted_parties(setting)
        if corrupted:
            adversary_kind = spec.adversary.kind
            adversary = make_adversary(
                instance,
                corrupted,
                kind=spec.adversary.kind,
                # Resolve the recipe here so make_adversary does not hit
                # the uncached oracle once per run.
                recipe=spec.recipe or verdict.recipe or "bb_direct",
                seed=spec.adversary.seed,
                crash_round=spec.adversary.crash_round,
                mutator=spec.adversary.mutator,
            )
    return setting, verdict, instance, adversary, adversary_kind, corrupted


def _bsm_records(spec: ScenarioSpec) -> tuple[RunRecord, ...]:
    setting = spec.setting()
    verdict = cached_verdict(setting)
    if spec.recipe is None and verdict.recipe is None:
        # Unsolvable point, no recipe forced: nothing to run.  Emit a
        # not-run record instead of aborting the whole sweep, so grid
        # sweeps over budgets="all" characterize rather than crash.
        return (
            RunRecord(
                scenario=spec.label(),
                family="bsm",
                topology=spec.topology,
                authenticated=spec.authenticated,
                k=spec.k,
                tL=spec.tL,
                tR=spec.tR,
                seed=spec.profile.seed,
                solvable=False,
                theorem=verdict.theorem,
                adversary=spec.adversary.kind if spec.adversary else "none",
                violations=(f"not run: {verdict.reason}",),
            ),
        )
    setting, verdict, instance, adversary, adversary_kind, corrupted = _build_bsm_run(spec)
    report = run_bsm(
        instance,
        adversary,
        recipe=spec.recipe,
        max_rounds=spec.max_rounds,
        record_trace=spec.record_trace,
        keyring=cached_keyring(spec.k) if setting.authenticated else None,
        verdict=verdict,
    )
    outputs = tuple(
        (str(party), str(report.result.outputs.get(party)))
        for party in sorted(report.honest)
    )
    matched = sum(1 for _, partner in outputs if partner != "None")
    return (
        RunRecord(
            scenario=spec.label(),
            family="bsm",
            topology=spec.topology,
            authenticated=spec.authenticated,
            k=spec.k,
            tL=spec.tL,
            tR=spec.tR,
            seed=spec.profile.seed,
            recipe=spec.recipe or (verdict.recipe or ""),
            solvable=verdict.solvable,
            theorem=verdict.theorem,
            adversary=adversary_kind,
            corrupted=len(corrupted),
            ok=report.ok,
            termination=report.report.termination,
            symmetry=report.report.symmetry,
            stability=report.report.stability,
            non_competition=report.report.non_competition,
            violations=tuple(report.report.violations),
            rounds=report.result.rounds,
            messages=report.result.message_count,
            bytes=report.result.byte_count,
            matched=matched,
            outputs=outputs,
        ),
    )


def _attack_records(spec: ScenarioSpec) -> tuple[RunRecord, ...]:
    from repro.adversary.attacks import run_attack

    twisted = attack_spec(spec.attack)
    report = run_attack(twisted)
    setting = twisted.setting
    verdict = cached_verdict(setting)
    records = []
    for scenario_name, outcome in report.outcomes.items():
        outputs = tuple(
            (str(party), str(value)) for party, value in sorted(outcome.outputs.items())
        )
        records.append(
            RunRecord(
                scenario=f"{spec.label()}/{scenario_name}",
                family="attack",
                topology=setting.topology_name,
                authenticated=setting.authenticated,
                k=setting.k,
                tL=setting.tL,
                tR=setting.tR,
                recipe=twisted.recipe,
                solvable=verdict.solvable,
                theorem=verdict.theorem,
                adversary="twisted",
                corrupted=len(outcome.corrupted),
                ok=outcome.report.all_ok,
                termination=outcome.report.termination,
                symmetry=outcome.report.symmetry,
                stability=outcome.report.stability,
                non_competition=outcome.report.non_competition,
                violations=tuple(outcome.report.violations),
                rounds=outcome.result.rounds,
                messages=outcome.result.message_count,
                bytes=outcome.result.byte_count,
                matched=sum(1 for _, v in outputs if v != "None"),
                outputs=outputs,
            )
        )
    return tuple(records)


def _run_roommates_spec(spec: ScenarioSpec):
    """Execute one roommates spec; returns ``(report, adversary_kind, corrupted)``."""
    from repro.adversary.adversary import BehaviorAdversary, SilentBehavior
    from repro.core.roommates_bsm import RoommatesInstance, RoommatesSetting, run_roommates

    setting = RoommatesSetting(n=spec.n, t=spec.t, authenticated=spec.authenticated)
    parties = setting.parties()
    instance = RoommatesInstance(setting, spec.profile.build_roommates(parties))
    adversary = None
    corrupted: tuple = ()
    adversary_kind = "none"
    if spec.adversary is not None and spec.t > 0:
        if spec.adversary.kind != "silent":
            raise SolvabilityError(
                "roommates specs currently support only the silent adversary"
            )
        adversary_kind = spec.adversary.kind
        if spec.adversary.corrupt == "budget":
            corrupted = tuple(parties[-spec.t:])
        else:
            corrupted = spec.adversary.corrupted_parties(
                Setting("fully_connected", spec.authenticated, setting.k, 0, 0)
            )
        adversary = BehaviorAdversary({p: SilentBehavior() for p in corrupted})
    report = run_roommates(
        instance,
        adversary,
        max_rounds=spec.max_rounds or 400,
        reference_solvable=False if adversary is not None else None,
    )
    return report, adversary_kind, corrupted


def _roommates_records(spec: ScenarioSpec) -> tuple[RunRecord, ...]:
    report, adversary_kind, corrupted = _run_roommates_spec(spec)
    setting = report.setting
    outputs = tuple(
        (str(party), str(report.result.outputs.get(party)))
        for party in sorted(report.honest)
    )
    return (
        RunRecord(
            scenario=spec.label(),
            family="roommates",
            topology="fully_connected",
            authenticated=spec.authenticated,
            k=setting.k,
            tL=spec.t,
            tR=0,
            seed=spec.profile.seed,
            recipe="roommates_bb",
            adversary=adversary_kind,
            corrupted=len(corrupted),
            ok=report.ok,
            termination=report.verdict.termination,
            symmetry=report.verdict.symmetry,
            stability=report.verdict.conditional_stability,
            non_competition=report.verdict.non_competition,
            violations=tuple(report.verdict.violations),
            rounds=report.result.rounds,
            messages=report.result.message_count,
            bytes=report.result.byte_count,
            matched=sum(1 for _, v in outputs if v != "None"),
            outputs=outputs,
        ),
    )


def _offline_records(spec: ScenarioSpec) -> tuple[RunRecord, ...]:
    from repro.ids import left_side
    from repro.matching.gale_shapley import gale_shapley
    from repro.matching.incomplete import gale_shapley_incomplete

    profile = spec.profile.build(spec.k)
    if spec.algorithm == "incomplete":
        matching = gale_shapley_incomplete(profile)
        proposals = 0
    else:
        result = gale_shapley(profile)
        matching = result.matching
        proposals = result.proposals
    matched = sum(
        1 for party in left_side(spec.k) if matching.partner(party) is not None
    )
    return (
        RunRecord(
            scenario=spec.label(),
            family="offline",
            k=spec.k,
            seed=spec.profile.seed,
            recipe=spec.algorithm,
            ok=True,
            termination=True,
            symmetry=True,
            stability=True,
            non_competition=True,
            matched=matched,
            proposals=proposals,
        ),
    )


def attack_spec(lemma: str):
    """The twisted-system construction for a lemma name."""
    from repro.adversary.attacks import lemma5_spec, lemma7_spec, lemma13_spec

    constructors = {
        "lemma5": lemma5_spec,
        "lemma7": lemma7_spec,
        "lemma13": lemma13_spec,
    }
    try:
        return constructors[lemma]()
    except KeyError as exc:
        raise SolvabilityError(
            f"unknown attack {lemma!r}; known: {sorted(constructors)}"
        ) from exc


_FAMILY_RUNNERS: dict[str, Callable[[ScenarioSpec], tuple[RunRecord, ...]]] = {
    "bsm": _bsm_records,
    "attack": _attack_records,
    "roommates": _roommates_records,
    "offline": _offline_records,
}


def execute_spec(spec: ScenarioSpec) -> tuple[RunRecord, ...]:
    """Run one scenario and return its record rows (pure, deterministic)."""
    return _FAMILY_RUNNERS[spec.family](spec)


def _pool_worker(payload: dict) -> list[dict]:
    """Process-pool entry point: dict in, dicts out (picklable both ways)."""
    spec = ScenarioSpec.from_dict(payload)
    return [record.to_dict() for record in execute_spec(spec)]


# -- the engine ----------------------------------------------------------------


class Engine:
    """Executes sweeps on a pluggable executor with per-process memoization.

    ``executor`` is ``"serial"`` (default) or ``"process"``; ``workers``
    bounds the pool (default: CPU count).  Adding a new backend —
    sharded, async, remote — means adding a new executor here, not
    rewriting callers.
    """

    def __init__(self, executor: str = "serial", workers: int | None = None) -> None:
        if executor not in EXECUTORS:
            raise SolvabilityError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.executor = executor
        self.workers = workers or (os.cpu_count() or 2)

    def run(self, spec: ScenarioSpec) -> RunRecordSet:
        """Execute one spec in-process."""
        started = time.perf_counter()
        records = execute_spec(spec)
        return RunRecordSet(
            records=records,
            elapsed_seconds=time.perf_counter() - started,
            executor="serial",
        )

    def run_sweep(self, sweep: Sweep | Iterable[ScenarioSpec]) -> RunRecordSet:
        """Execute a batch; records come back in spec order regardless
        of which executor (or worker) ran each spec."""
        specs = tuple(sweep)
        started = time.perf_counter()
        if self.executor == "process" and len(specs) > 1:
            payloads = [spec.to_dict() for spec in specs]
            chunksize = max(1, len(payloads) // (self.workers * 4))
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(payloads))
            ) as pool:
                rows_per_spec = list(
                    pool.map(_pool_worker, payloads, chunksize=chunksize)
                )
            records = tuple(
                RunRecord.from_dict(row) for rows in rows_per_spec for row in rows
            )
        else:
            records = tuple(
                record for spec in specs for record in execute_spec(spec)
            )
        return RunRecordSet(
            records=records,
            elapsed_seconds=time.perf_counter() - started,
            executor=self.executor,
        )

    def run_adaptive(
        self,
        initial: Sweep | Iterable[ScenarioSpec],
        refine: Callable[[RunRecordSet], Sequence[ScenarioSpec]],
        max_batches: int = 8,
    ) -> RunRecordSet:
        """Adaptive sweep: run a batch, let ``refine`` propose the next.

        ``refine`` sees everything gathered so far and returns the next
        batch of specs (empty to stop).  Useful for walking a frontier:
        run cheap points first, then spend runs only where the verdict
        flips.
        """
        gathered = self.run_sweep(initial)
        for _ in range(max_batches):
            next_specs = tuple(refine(gathered))
            if not next_specs:
                break
            gathered = gathered + self.run_sweep(next_specs)
        return gathered


# -- the façade ----------------------------------------------------------------


class Session:
    """One front door for every caller: CLI, benchmarks, examples, tests.

    A session wraps an :class:`Engine` plus the memoized oracle, and
    offers three granularities:

    * :meth:`solve` — a (memoized) solvability verdict;
    * :meth:`run` / :meth:`sweep` — records, through the configured
      executor;
    * :meth:`report` / :meth:`attack` / :meth:`execute` — full in-
      process report objects, for callers that need traces, outputs,
      or the attack scenarios' indistinguishability checks.
    """

    def __init__(self, executor: str | None = None, workers: int | None = None) -> None:
        self.engine = Engine(
            executor=_implied_executor(executor, workers), workers=workers
        )

    # -- oracle ---------------------------------------------------------------

    def solve(self, setting: Setting) -> SolvabilityVerdict:
        """The paper's characterization for one setting (memoized)."""
        return cached_verdict(setting)

    # -- records --------------------------------------------------------------

    def run(self, spec: ScenarioSpec) -> RunRecordSet:
        """Execute one spec and return its records."""
        return self.engine.run(spec)

    def sweep(
        self,
        sweep: Sweep | Iterable[ScenarioSpec] | str,
        *,
        executor: str | None = None,
        workers: int | None = None,
    ) -> RunRecordSet:
        """Execute a sweep (or a preset, by name) and return all records."""
        if isinstance(sweep, str):
            sweep = self.preset(sweep)
        engine = self.engine
        if executor is not None or workers is not None:
            if executor is None:
                # workers only makes sense on the pool: honor the request.
                executor = "process" if workers is not None else self.engine.executor
            engine = Engine(executor=executor, workers=workers or self.engine.workers)
        return engine.run_sweep(sweep)

    def adaptive(self, initial, refine, max_batches: int = 8) -> RunRecordSet:
        """Adaptive sweep — see :meth:`Engine.run_adaptive`."""
        return self.engine.run_adaptive(initial, refine, max_batches=max_batches)

    # -- full reports ---------------------------------------------------------

    def report(self, spec: ScenarioSpec) -> BSMReport:
        """Run one bSM spec in-process and return the full report
        (result, trace when ``record_trace``, property breakdown)."""
        if spec.family != "bsm":
            raise SolvabilityError(
                f"report() is for the bsm family, got {spec.family!r}; "
                "use attack()/run() for other families"
            )
        _, _, instance, adversary, _, _ = _build_bsm_run(spec)
        return self.execute(
            instance,
            adversary,
            recipe=spec.recipe,
            max_rounds=spec.max_rounds,
            record_trace=spec.record_trace,
        )

    def execute(
        self,
        instance: BSMInstance,
        adversary=None,
        *,
        recipe: str | None = None,
        max_rounds: int | None = None,
        enforce_structure: bool = True,
        record_trace: bool = False,
    ) -> BSMReport:
        """The imperative escape hatch: run a pre-built instance/adversary
        with the session's memoized keyring and verdict."""
        setting = instance.setting
        return run_bsm(
            instance,
            adversary,
            recipe=recipe,
            max_rounds=max_rounds,
            enforce_structure=enforce_structure,
            record_trace=record_trace,
            keyring=cached_keyring(setting.k) if setting.authenticated else None,
            verdict=cached_verdict(setting),
        )

    def attack(self, lemma: str):
        """Run a twisted-system construction; returns the full
        :class:`~repro.adversary.attacks.AttackReport`."""
        from repro.adversary.attacks import run_attack

        return run_attack(attack_spec(lemma))

    def roommates(self, spec: ScenarioSpec):
        """Run one roommates spec in-process and return the full report."""
        if spec.family != "roommates":
            raise SolvabilityError(f"roommates() needs a roommates spec, got {spec.family!r}")
        report, _, _ = _run_roommates_spec(spec)
        return report

    # -- presets --------------------------------------------------------------

    def preset(self, name: str) -> Sweep:
        """A named sweep from :mod:`repro.experiment.presets`."""
        from repro.experiment.presets import preset

        return preset(name)
