"""The batch engine: execute one spec, or thousands, on any executor.

Layering:

* :func:`execute_spec` — the pure function from a
  :class:`~repro.experiment.spec.ScenarioSpec` to its
  :class:`~repro.experiment.records.RunRecord` rows.  Deterministic:
  every source of randomness is seeded by the spec, and process-level
  caches only memoize pure values (solvability verdicts, keyrings);
* executors — ``"serial"`` runs in-process one spec at a time,
  ``"batch"`` schedules every bsm run of the sweep through one
  :class:`~repro.runtime.BatchRuntime` round loop over a shared
  :class:`~repro.runtime.ExecutionCache` (the single-worker fast
  path), ``"process"`` fans the specs over a ``concurrent.futures``
  process pool (specs travel as JSON dictionaries, so workers share
  nothing with the parent), and ``"parallel"`` composes the two:
  deterministic contiguous shards of the sweep, each executed in a
  worker through its own batched round loop over a per-worker cache
  (optionally warm-started from a pickled seed of the parent's
  encode-memo tables).  All return records in spec order, and a
  sweep's output is byte-identical whichever executor ran it;
* :class:`Engine` — batch execution plus adaptive sweeps (run, refine,
  repeat);
* :class:`Session` — the user-facing façade: presets, single runs with
  full reports, sweeps, structured traces, and the memoized oracle.
  Every CLI command, benchmark, and example routes through a session.
"""

from __future__ import annotations

import concurrent.futures
import functools
import os
import time
from typing import Callable, Iterable, Sequence

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import (
    BSMReport,
    finish_bsm,
    make_adversary,
    prepare_bsm,
    run_bsm,
)
from repro.core.solvability import SolvabilityVerdict, cached_is_solvable
from repro.crypto.signatures import KeyRing
from repro.errors import SolvabilityError
from repro.experiment.records import RunRecord, RunRecordSet
from repro.experiment.spec import EXECUTOR_NAMES, ExecutorSpec, ScenarioSpec, Sweep
from repro.ids import all_parties
from repro.runtime import (
    NO_CACHE,
    BatchRuntime,
    ExecutionCache,
    TraceRecorder,
    merge_cache_stats,
    runtime_for,
)

__all__ = [
    "EXECUTORS",
    "POOLED_EXECUTORS",
    "OUT_OF_PROCESS_EXECUTORS",
    "execute_spec",
    "stream_sweep",
    "effective_workers",
    "cached_verdict",
    "cached_keyring",
    "Engine",
    "Session",
]

#: The executor axis (re-exported from the spec layer, where the
#: declarative :class:`~repro.experiment.spec.ExecutorSpec` lives).
EXECUTORS = EXECUTOR_NAMES

#: Executors that fan work over a process pool: they honor ``workers``
#: and cannot stream structured trace events back to the parent.  The
#: CLI and the bench runner key their pool-specific handling off this
#: tuple, so a future pool-backed executor changes it in one place.
POOLED_EXECUTORS = ("process", "parallel")

#: Executors whose runs leave this process entirely (pools plus the
#: cross-host plane) — none of them can stream trace events back.
OUT_OF_PROCESS_EXECUTORS = POOLED_EXECUTORS + ("hosts",)


def _implied_executor(executor: str | None, workers: int | None) -> str:
    """An unspecified executor defaults to serial — unless the caller
    asked for workers, which implies a pool (``process``, the historical
    default; pass ``executor="parallel"`` explicitly for sharded
    batching)."""
    if executor is not None:
        return executor
    return "process" if workers is not None else "serial"


# -- memoized pure values (per process; workers build their own) ---------------


#: The solvability oracle, memoized across runs — one shared memo with
#: sweep-grid expansion and the frontier preset (see
#: :data:`repro.core.solvability.cached_is_solvable`).
cached_verdict = cached_is_solvable


@functools.lru_cache(maxsize=64)
def cached_keyring(k: int) -> KeyRing:
    """One PKI per side size, shared by every authenticated run.

    A :class:`KeyRing` is immutable after construction, so reusing it
    across runs is safe and skips ``2k`` key derivations per run.
    """
    return KeyRing(all_parties(k))


# -- spec execution ------------------------------------------------------------


def _cached_profile(spec: ScenarioSpec, cache) -> object:
    """The spec's materialized profile, memoized through ``cache``.

    Generated profiles are pure functions of ``(kind, knobs, seed, k)``
    and immutable once built, so a batch can share one object across
    every budget point that reuses a seed.  Explicit-list profiles skip
    the cache (their spec is unhashable and they are built trivially).
    """
    profile_spec = spec.profile
    if profile_spec.lists is not None:
        return profile_spec.build(spec.k)
    key = (
        "profile",
        profile_spec.kind,
        profile_spec.seed,
        profile_spec.similarity,
        profile_spec.acceptance,
        spec.k,
    )
    return cache.memo(key, lambda: profile_spec.build(spec.k))


def _build_bsm_run(spec: ScenarioSpec, cache=NO_CACHE):
    """Materialize one bsm spec: ``(setting, verdict, instance, adversary,
    adversary_kind, corrupted, drop_rule)`` — shared by the record and
    report paths."""
    setting = spec.setting()
    verdict = cached_verdict(setting)
    instance = BSMInstance(setting, _cached_profile(spec, cache))
    adversary = None
    adversary_kind = "none"
    corrupted: tuple = ()
    drop_rule = None
    if spec.adversary is not None:
        if spec.adversary.link is not None:
            drop_rule = spec.adversary.link.drop_rule(setting)
        corrupted = spec.adversary.corrupted_parties(setting)
        if corrupted:
            adversary_kind = spec.adversary.kind
            adversary = make_adversary(
                instance,
                corrupted,
                kind=spec.adversary.kind,
                # Resolve the recipe here so make_adversary does not hit
                # the uncached oracle once per run.
                recipe=spec.recipe or verdict.recipe or "bb_direct",
                seed=spec.adversary.seed,
                crash_round=spec.adversary.crash_round,
                mutator=spec.adversary.mutator,
            )
    return setting, verdict, instance, adversary, adversary_kind, corrupted, drop_rule


def _bsm_not_run_record(spec: ScenarioSpec, verdict: SolvabilityVerdict) -> RunRecord:
    """The record for an unsolvable, recipe-less grid point.

    Emitted instead of aborting the whole sweep, so grid sweeps over
    ``budgets="all"`` characterize rather than crash.
    """
    return RunRecord(
        scenario=spec.label(),
        family="bsm",
        topology=spec.topology,
        authenticated=spec.authenticated,
        k=spec.k,
        tL=spec.tL,
        tR=spec.tR,
        seed=spec.profile.seed,
        solvable=False,
        theorem=verdict.theorem,
        adversary=spec.adversary.kind if spec.adversary else "none",
        link=(
            spec.adversary.link.describe()
            if spec.adversary and spec.adversary.link
            else ""
        ),
        violations=(f"not run: {verdict.reason}",),
        tags=spec.tags,
    )


def _bsm_record(
    spec: ScenarioSpec,
    verdict: SolvabilityVerdict,
    adversary_kind: str,
    corrupted: tuple,
    report: BSMReport,
) -> RunRecord:
    """Flatten one executed bsm run into its record row."""
    outputs = tuple(
        (str(party), str(report.result.outputs.get(party)))
        for party in sorted(report.honest)
    )
    matched = sum(1 for _, partner in outputs if partner != "None")
    return RunRecord(
        scenario=spec.label(),
        family="bsm",
        topology=spec.topology,
        authenticated=spec.authenticated,
        k=spec.k,
        tL=spec.tL,
        tR=spec.tR,
        seed=spec.profile.seed,
        recipe=spec.recipe or (verdict.recipe or ""),
        solvable=verdict.solvable,
        theorem=verdict.theorem,
        adversary=adversary_kind,
        link=(
            spec.adversary.link.describe()
            if spec.adversary and spec.adversary.link
            else ""
        ),
        corrupted=len(corrupted),
        ok=report.ok,
        termination=report.report.termination,
        symmetry=report.report.symmetry,
        stability=report.report.stability,
        non_competition=report.report.non_competition,
        violations=tuple(report.report.violations),
        rounds=report.result.rounds,
        messages=report.result.message_count,
        bytes=report.result.byte_count,
        dropped=report.result.dropped,
        matched=matched,
        outputs=outputs,
        tags=spec.tags,
    )


def _compile_bsm(spec: ScenarioSpec, cache=NO_CACHE, trace=None):
    """Compile one bsm spec: ``(records, compiled)``.

    Exactly one of the two is set: ``records`` for points that produce
    rows without running (unsolvable, recipe-less), ``compiled`` as
    ``(prepared, adversary_kind, corrupted)`` ready for any runtime.
    Both the serial and batched executors assemble through here, so
    they cannot drift apart.
    """
    verdict = cached_verdict(spec.setting())
    if spec.recipe is None and verdict.recipe is None:
        return (_bsm_not_run_record(spec, verdict),), None
    setting, verdict, instance, adversary, adversary_kind, corrupted, drop_rule = (
        _build_bsm_run(spec, cache)
    )
    prepared = prepare_bsm(
        instance,
        adversary,
        recipe=spec.recipe,
        max_rounds=spec.max_rounds,
        record_trace=spec.record_trace,
        keyring=cached_keyring(spec.k) if setting.authenticated else None,
        verdict=verdict,
        drop_rule=drop_rule,
        trace=trace,
        label=spec.label(),
    )
    return None, (prepared, adversary_kind, corrupted)


def _bsm_records(spec: ScenarioSpec, cache=NO_CACHE, trace=None) -> tuple[RunRecord, ...]:
    records, compiled = _compile_bsm(spec, cache, trace)
    if records is not None:
        return records
    prepared, adversary_kind, corrupted = compiled
    report = finish_bsm(prepared, runtime_for(spec.runtime).run(prepared.plan))
    return (_bsm_record(spec, prepared.verdict, adversary_kind, corrupted, report),)


def _attack_records(spec: ScenarioSpec) -> tuple[RunRecord, ...]:
    from repro.adversary.attacks import run_attack

    twisted = attack_spec(spec.attack)
    report = run_attack(twisted)
    setting = twisted.setting
    verdict = cached_verdict(setting)
    records = []
    for scenario_name, outcome in report.outcomes.items():
        outputs = tuple(
            (str(party), str(value)) for party, value in sorted(outcome.outputs.items())
        )
        records.append(
            RunRecord(
                scenario=f"{spec.label()}/{scenario_name}",
                family="attack",
                topology=setting.topology_name,
                authenticated=setting.authenticated,
                k=setting.k,
                tL=setting.tL,
                tR=setting.tR,
                recipe=twisted.recipe,
                solvable=verdict.solvable,
                theorem=verdict.theorem,
                adversary="twisted",
                corrupted=len(outcome.corrupted),
                ok=outcome.report.all_ok,
                termination=outcome.report.termination,
                symmetry=outcome.report.symmetry,
                stability=outcome.report.stability,
                non_competition=outcome.report.non_competition,
                violations=tuple(outcome.report.violations),
                rounds=outcome.result.rounds,
                messages=outcome.result.message_count,
                bytes=outcome.result.byte_count,
                matched=sum(1 for _, v in outputs if v != "None"),
                outputs=outputs,
                tags=spec.tags,
            )
        )
    return tuple(records)


def _run_roommates_spec(spec: ScenarioSpec):
    """Execute one roommates spec; returns ``(report, adversary_kind, corrupted)``."""
    from repro.adversary.adversary import BehaviorAdversary, SilentBehavior
    from repro.core.roommates_bsm import RoommatesInstance, RoommatesSetting, run_roommates

    setting = RoommatesSetting(n=spec.n, t=spec.t, authenticated=spec.authenticated)
    parties = setting.parties()
    instance = RoommatesInstance(setting, spec.profile.build_roommates(parties))
    adversary = None
    corrupted: tuple = ()
    adversary_kind = "none"
    if spec.adversary is not None and spec.t > 0:
        if spec.adversary.kind != "silent":
            raise SolvabilityError(
                "roommates specs currently support only the silent adversary"
            )
        adversary_kind = spec.adversary.kind
        if spec.adversary.corrupt == "budget":
            corrupted = tuple(parties[-spec.t:])
        else:
            corrupted = spec.adversary.corrupted_parties(
                Setting("fully_connected", spec.authenticated, setting.k, 0, 0)
            )
        adversary = BehaviorAdversary({p: SilentBehavior() for p in corrupted})
    report = run_roommates(
        instance,
        adversary,
        max_rounds=spec.max_rounds or 400,
        reference_solvable=False if adversary is not None else None,
    )
    return report, adversary_kind, corrupted


def _roommates_records(spec: ScenarioSpec) -> tuple[RunRecord, ...]:
    report, adversary_kind, corrupted = _run_roommates_spec(spec)
    setting = report.setting
    outputs = tuple(
        (str(party), str(report.result.outputs.get(party)))
        for party in sorted(report.honest)
    )
    return (
        RunRecord(
            scenario=spec.label(),
            family="roommates",
            topology="fully_connected",
            authenticated=spec.authenticated,
            k=setting.k,
            tL=spec.t,
            tR=0,
            seed=spec.profile.seed,
            recipe="roommates_bb",
            adversary=adversary_kind,
            corrupted=len(corrupted),
            ok=report.ok,
            termination=report.verdict.termination,
            symmetry=report.verdict.symmetry,
            stability=report.verdict.conditional_stability,
            non_competition=report.verdict.non_competition,
            violations=tuple(report.verdict.violations),
            rounds=report.result.rounds,
            messages=report.result.message_count,
            bytes=report.result.byte_count,
            matched=sum(1 for _, v in outputs if v != "None"),
            outputs=outputs,
            tags=spec.tags,
        ),
    )


def _offline_records(spec: ScenarioSpec) -> tuple[RunRecord, ...]:
    from repro.ids import left_side, right_side
    from repro.matching.gale_shapley import gale_shapley
    from repro.matching.incomplete import IncompleteProfile, gale_shapley_incomplete
    from repro.matching.kernel import random_instance_stats

    if spec.algorithm == "gale_shapley" and spec.profile.kind == "random":
        # Kernel fast path for the random-ensemble workload: the record
        # carries only (matched, proposals, receiver_rank), all of which
        # the kernel computes PartyId-free from the same seed stream —
        # byte-identical to building the profile (tests/test_kernel.py).
        proposals, receiver_rank = random_instance_stats(spec.k, spec.profile.seed)
        return (
            RunRecord(
                scenario=spec.label(),
                family="offline",
                k=spec.k,
                seed=spec.profile.seed,
                recipe=spec.algorithm,
                ok=True,
                termination=True,
                symmetry=True,
                stability=True,
                non_competition=True,
                matched=spec.k,
                proposals=proposals,
                receiver_rank=receiver_rank,
                tags=spec.tags,
            ),
        )

    profile = spec.profile.build(spec.k)
    receiver_rank = 0
    if spec.algorithm == "incomplete":
        if not isinstance(profile, IncompleteProfile):
            # A complete profile is the everyone-acceptable special case
            # (conformance ensembles mix profile kinds freely).
            profile = IncompleteProfile(k=profile.k, lists=profile.lists)
        matching = gale_shapley_incomplete(profile)
        proposals = 0
    else:
        result = gale_shapley(profile)
        matching = result.matching
        proposals = result.proposals
        # 1-indexed partner ranks on the receiving side; the proposer
        # analogue is `proposals` itself (each proposal walks one rank).
        for party in right_side(spec.k):
            partner = matching.partner(party)
            if partner is not None:
                receiver_rank += profile.rank(party, partner) + 1
    matched = sum(
        1 for party in left_side(spec.k) if matching.partner(party) is not None
    )
    return (
        RunRecord(
            scenario=spec.label(),
            family="offline",
            k=spec.k,
            seed=spec.profile.seed,
            recipe=spec.algorithm,
            ok=True,
            termination=True,
            symmetry=True,
            stability=True,
            non_competition=True,
            matched=matched,
            proposals=proposals,
            receiver_rank=receiver_rank,
            tags=spec.tags,
        ),
    )


def attack_spec(lemma: str):
    """The twisted-system construction for a lemma name."""
    from repro.adversary.attacks import lemma5_spec, lemma7_spec, lemma13_spec

    constructors = {
        "lemma5": lemma5_spec,
        "lemma7": lemma7_spec,
        "lemma13": lemma13_spec,
    }
    try:
        return constructors[lemma]()
    except KeyError as exc:
        raise SolvabilityError(
            f"unknown attack {lemma!r}; known: {sorted(constructors)}"
        ) from exc


_FAMILY_RUNNERS: dict[str, Callable[[ScenarioSpec], tuple[RunRecord, ...]]] = {
    "bsm": _bsm_records,
    "attack": _attack_records,
    "roommates": _roommates_records,
    "offline": _offline_records,
}


def execute_spec(spec: ScenarioSpec, *, cache=NO_CACHE, trace=None) -> tuple[RunRecord, ...]:
    """Run one scenario and return its record rows (pure, deterministic).

    ``cache`` (an :class:`~repro.runtime.ExecutionCache`) and ``trace``
    (a structured sink) only apply to network-backed families; both are
    semantically transparent.
    """
    if spec.family == "bsm":
        return _bsm_records(spec, cache, trace)
    return _FAMILY_RUNNERS[spec.family](spec)


def _execute_batched(
    specs: Sequence[ScenarioSpec], trace=None, cache: ExecutionCache | None = None
) -> tuple[tuple[RunRecord, ...], ExecutionCache]:
    """The single-worker fast path: one shared-cache batched round loop.

    Every runnable bsm spec is compiled to a plan and scheduled through
    one :class:`~repro.runtime.BatchRuntime`; other families (and specs
    pinned to the event runtime) execute in place.  Records come back
    in spec order and are byte-identical to the serial executor's; the
    batch's :class:`~repro.runtime.ExecutionCache` is returned alongside
    so callers (the bench runner) can read its hit statistics.
    ``cache`` lets a parallel worker pass its (possibly warm-started)
    per-shard cache in.
    """
    cache = cache if cache is not None else ExecutionCache()
    runtime = BatchRuntime(cache)
    rows: list[tuple[RunRecord, ...] | None] = [None] * len(specs)
    batched: list[tuple[int, ScenarioSpec, object, str, tuple]] = []
    for i, spec in enumerate(specs):
        if spec.family != "bsm" or spec.runtime == "event":
            rows[i] = execute_spec(spec, cache=cache, trace=trace)
            continue
        records, compiled = _compile_bsm(spec, cache, trace)
        if records is not None:
            rows[i] = records
            continue
        prepared, adversary_kind, corrupted = compiled
        batched.append((i, spec, prepared, adversary_kind, corrupted))
    results = runtime.run_many([prepared.plan for (_, _, prepared, _, _) in batched])
    for (i, spec, prepared, adversary_kind, corrupted), result in zip(batched, results):
        report = finish_bsm(prepared, result)
        rows[i] = (
            _bsm_record(spec, prepared.verdict, adversary_kind, corrupted, report),
        )
    return tuple(record for row in rows for record in row), cache


def _pool_worker(payload: dict) -> list[dict]:
    """Process-pool entry point: dict in, dicts out (picklable both ways)."""
    spec = ScenarioSpec.from_dict(payload)
    return [record.to_dict() for record in execute_spec(spec)]


# -- the parallel plane: sharded batched execution -----------------------------


def effective_workers(executor: str, workers: int | None, sweep_size: int) -> int:
    """The worker count ``executor`` actually uses for a sweep.

    One source of truth for the pool sizing rule — the engine's pool
    paths and the bench runner's recorded ``workers_<executor>``
    metadata both resolve through here, so trajectory files can never
    drift from what ran.  In-process executors always report 1;
    pool-backed ones default to the CPU count and never exceed the
    sweep (one spec cannot occupy two workers).
    """
    if executor not in POOLED_EXECUTORS:
        return 1
    requested = workers or (os.cpu_count() or 2)
    return max(1, min(requested, sweep_size))


def _chunk_bounds(count: int, shards: int) -> list[tuple[int, int]]:
    """Deterministic contiguous chunking: ``shards`` near-equal slices.

    Earlier shards take the remainder, so the split is a pure function
    of ``(count, shards)`` — re-running a sweep shards identically, and
    record order is reassembled by plain concatenation.
    """
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _warm_seed(specs: Sequence[ScenarioSpec]) -> tuple[object, ...]:
    """A pickled-shippable encode-memo seed for the sweep's workers.

    Materializes every generated bsm profile once in the parent and
    encodes its preference rankings — the heaviest payload substructures
    every protocol run re-sends — through a scratch cache, then
    snapshots the leaf/struct tables.  Workers restore the snapshot into
    their per-shard cache before executing, so cross-shard-identical
    structures encode once in the parent instead of once per worker.
    Purely an amortization: restored entries re-encode through the
    normal path, so records are unchanged.
    """
    scratch = ExecutionCache()
    for spec in specs:
        if spec.family != "bsm":
            continue
        profile = _cached_profile(spec, scratch)
        lists = getattr(profile, "lists", None)
        if not lists:
            continue
        for ranking in lists.values():
            scratch.encode(tuple(ranking))
    return scratch.encode_memo().snapshot()


def _sweep_rings(specs: Sequence[ScenarioSpec]) -> dict[int, KeyRing]:
    """The key rings (labeled by ``k``) a sweep's authenticated runs use.

    Ring key material is a deterministic function of ``k``, so the label
    is stable across processes and hosts — which is what lets signature
    memo entries persist (see :mod:`repro.runtime.diskcache`).
    """
    ks = sorted(
        {
            spec.k
            for spec in specs
            if spec.family == "bsm" and spec.setting().authenticated
        }
    )
    return {k: cached_keyring(k) for k in ks}


def _warm_seed_cached(specs: Sequence[ScenarioSpec]) -> tuple[object, ...]:
    """:func:`_warm_seed` through the persistent disk layer, when enabled.

    With ``REPRO_CACHE_DIR`` set, the seed for a given workload is
    computed once and re-read (content-addressed, fingerprint-versioned)
    by every later run of the same sweep; without it this is exactly
    ``_warm_seed``.
    """
    from repro.runtime.diskcache import DiskCache, sweep_key

    disk = DiskCache()
    if not disk.enabled:
        return _warm_seed(specs)
    key = sweep_key(specs)
    seed = disk.get_object("warm-seed", key)
    if isinstance(seed, tuple):
        return seed
    seed = _warm_seed(specs)
    disk.put_object("warm-seed", key, seed)
    return seed


def _disk_warm_start(cache: ExecutionCache, specs: Sequence[ScenarioSpec]):
    """Prime ``cache`` for ``specs`` from the disk layer, if possible.

    Returns ``(disk, miss_key, rings)``: ``disk`` is None when the layer
    is disabled; ``miss_key`` is the content key to store a fresh state
    under after the sweep (None on a hit — identical bytes would be
    rewritten for nothing).
    """
    from repro.runtime.diskcache import DiskCache, restore_warm_state, sweep_key

    disk = DiskCache()
    if not disk.enabled:
        return None, None, {}
    rings = _sweep_rings(specs)
    key = sweep_key(specs)
    state = disk.get_object("warm-state", key)
    if isinstance(state, dict):
        restore_warm_state(cache, rings, state)
        return disk, None, rings
    return disk, key, rings


def _disk_warm_store(
    disk, key: str | None, cache: ExecutionCache, rings: dict[int, KeyRing]
) -> None:
    """Persist the batch's warm state after a disk-layer miss."""
    if disk is None or key is None:
        return
    from repro.runtime.diskcache import capture_warm_state

    disk.put_object("warm-state", key, capture_warm_state(cache, rings))


def _parallel_worker(payload: dict) -> dict:
    """Parallel-shard entry point: one batched round loop per worker.

    ``payload`` carries the shard's specs as JSON dictionaries plus an
    optional encode-memo seed (pickled by the pool).  Returns the
    shard's records as dictionaries together with the per-worker
    cache statistics, which the parent merges via
    :func:`repro.runtime.merge_cache_stats`.
    """
    specs = [ScenarioSpec.from_dict(data) for data in payload["specs"]]
    cache = ExecutionCache()
    seed = payload.get("seed")
    if seed:
        cache.warm_values(seed)
    records, cache = _execute_batched(specs, cache=cache)
    return {
        "records": [record.to_dict() for record in records],
        "cache_stats": cache.stats(),
    }


def _execute_parallel(
    specs: Sequence[ScenarioSpec], workers: int, warm_cache: bool = False
) -> tuple[tuple[RunRecord, ...], dict]:
    """The multicore fast path: batched shards over a process pool.

    Shards the sweep into deterministic contiguous chunks, runs each in
    a worker through :func:`_execute_batched` (per-worker
    :class:`~repro.runtime.ExecutionCache`, optionally warm-started),
    and reassembles records in spec order.  A single effective shard
    short-circuits to the in-process batched path — no pool, no pickling
    — so ``parallel`` on one core degrades to ``batch`` plus nothing.
    """
    bounds = _chunk_bounds(len(specs), effective_workers("parallel", workers, len(specs)))
    seed = _warm_seed_cached(specs) if warm_cache and len(bounds) > 1 else None
    if len(bounds) <= 1:
        cache = ExecutionCache()
        disk, miss_key, rings = (
            _disk_warm_start(cache, specs) if warm_cache else (None, None, {})
        )
        records, cache = _execute_batched(specs, cache=cache)
        _disk_warm_store(disk, miss_key, cache, rings)
        return records, merge_cache_stats([cache.stats()])
    payloads = [
        {
            "specs": [spec.to_dict() for spec in specs[start:stop]],
            "seed": seed,
        }
        for start, stop in bounds
    ]
    with concurrent.futures.ProcessPoolExecutor(max_workers=len(payloads)) as pool:
        shards = list(pool.map(_parallel_worker, payloads))
    records = tuple(
        RunRecord.from_dict(data) for shard in shards for data in shard["records"]
    )
    return records, merge_cache_stats([shard["cache_stats"] for shard in shards])


def stream_sweep(
    specs: Sequence[ScenarioSpec] | Sweep,
    *,
    workers: int | None = None,
    warm_cache: bool = False,
    stats: dict | None = None,
    sink=None,
) -> Iterable[tuple[RunRecord, ...]]:
    """Execute a sweep and *yield* record chunks in spec order.

    The streaming complement of the ``parallel`` executor: the sweep is
    sharded exactly like :func:`_execute_parallel` (same bounds, same
    per-worker batched round loops, byte-identical records), but each
    shard's records are yielded as soon as that shard — and every shard
    before it — has completed, instead of materializing the whole
    :class:`~repro.experiment.records.RunRecordSet` first.  Memory
    stays flat in the number of shards, not the number of runs, which
    is what the ``repro.serve`` NDJSON streaming path and long-running
    ensemble writers need.

    A single effective shard degrades to the in-process batched path
    and yields once.  ``stats`` (optional dict) is updated in place
    with the merged per-worker cache statistics after the last chunk —
    a generator cannot return a value to a ``for`` loop, so the stats
    argument keeps :data:`~repro.experiment.records.RunRecordSet.cache_stats`
    available to streaming callers too.

    ``sink`` (an optional
    :class:`~repro.experiment.sinks.RecordSink`) receives each chunk
    via ``write_many`` *before* it is yielded, so a caller that only
    wants the sink's running view can drain the generator without
    touching the chunks (the service plane streams this way).  The sink
    is not closed here — lifecycle stays with the caller.
    """
    specs = tuple(specs)
    if not specs:
        if stats is not None:
            stats.update(merge_cache_stats([]))
        return
    bounds = _chunk_bounds(len(specs), effective_workers("parallel", workers, len(specs)))
    if len(bounds) <= 1:
        cache = ExecutionCache()
        disk, miss_key, rings = (
            _disk_warm_start(cache, specs) if warm_cache else (None, None, {})
        )
        records, cache = _execute_batched(specs, cache=cache)
        _disk_warm_store(disk, miss_key, cache, rings)
        if stats is not None:
            stats.update(merge_cache_stats([cache.stats()]))
        if sink is not None:
            sink.write_many(records)
        yield records
        return
    seed = _warm_seed_cached(specs) if warm_cache else None
    payloads = [
        {
            "specs": [spec.to_dict() for spec in specs[start:stop]],
            "seed": seed,
        }
        for start, stop in bounds
    ]
    shard_stats: list[dict] = []
    with concurrent.futures.ProcessPoolExecutor(max_workers=len(payloads)) as pool:
        # Submit every shard up front, then drain in spec order: shard
        # i+1 finishing early just makes its yield instantaneous once
        # shard i lands, so streaming never reorders records.
        futures = [pool.submit(_parallel_worker, payload) for payload in payloads]
        for future in futures:
            shard = future.result()
            shard_stats.append(shard["cache_stats"])
            chunk = tuple(RunRecord.from_dict(data) for data in shard["records"])
            if sink is not None:
                sink.write_many(chunk)
            yield chunk
    if stats is not None:
        stats.update(merge_cache_stats(shard_stats))


def _flush_sink(sink) -> None:
    """Push a sink's buffered records to stable storage, when it can."""
    flush = getattr(sink, "flush", None)
    if callable(flush):
        flush()


def _sink_position(sink) -> int | None:
    """The sink's archive byte offset, when it can report one."""
    tell = getattr(sink, "tell", None)
    return tell() if callable(tell) else None


def _sink_rollback(sink, ckpt) -> None:
    """Align a resumable archive with what the checkpoint acknowledged.

    A kill can land between a flush and the checkpoint update; the
    archive then holds records the checkpoint never acknowledged, which
    a naive append would duplicate.  Truncating back to the recorded
    offset (0 when nothing was ever acknowledged) restores the exact
    acknowledged prefix — resumed archives stay byte-identical to an
    uninterrupted run.  Sinks without ``rollback`` (aggregates, tees)
    are left alone.
    """
    rollback = getattr(sink, "rollback", None)
    if not callable(rollback):
        return
    offset = ckpt.archive_bytes
    if ckpt.completed == 0 and offset is None:
        offset = 0
    if offset is not None:
        rollback(offset)


def sweep_into(
    specs: Sequence[ScenarioSpec] | Sweep,
    sink,
    *,
    workers: int | None = None,
    warm_cache: bool = False,
    batch_size: int = 256,
    stats: dict | None = None,
    checkpoint: str | None = None,
) -> int:
    """Execute a sweep writing every record into ``sink``; returns the count.

    The memory-bounded execution plane: records are *never* gathered
    into a :class:`~repro.experiment.records.RunRecordSet`.  With
    multiple effective shards this drains :func:`stream_sweep` (one
    ``write_many`` per shard, byte-identical records, spec order); with
    a single effective shard the sweep runs in-process through the
    batched round loop in slices of ``batch_size`` specs, so resident
    records stay bounded by ``batch_size`` (plus whatever the sink
    retains) no matter how large the sweep is.  Shared caches persist
    across slices, so slicing costs no cache locality.

    ``checkpoint`` names a :class:`~repro.experiment.checkpoint.
    SweepCheckpoint` file next to the sink's archive: completed-spec
    progress (plus the archive byte offset, when the sink reports one)
    is snapshotted after every flushed batch/shard, and a restart with
    the same workload skips the completed prefix.  Pair it with an
    append-mode NDJSON sink: the archive is first rolled back to the
    acknowledged offset, so the resumed archive is byte-identical to an
    uninterrupted run wherever the kill landed.  A checkpointed sweep
    *owns* its archive — with no acknowledged progress the archive
    restarts from byte 0.  The count returned is the records written by
    *this* call — a resumed run reports the remainder.

    The sink is left open — close it (or use ``with``) at the call
    site; spilling sinks only complete their on-disk archive on close.
    """
    if batch_size < 1:
        raise SolvabilityError(f"batch_size must be >= 1, got {batch_size}")
    specs = tuple(specs)
    ckpt = None
    done = 0
    if checkpoint is not None:
        from repro.experiment.checkpoint import SweepCheckpoint

        ckpt = SweepCheckpoint(checkpoint, specs)
        done = ckpt.completed
        # A checkpointed sweep owns its archive: drop anything past the
        # acknowledged offset (all of it when nothing was acknowledged)
        # so the resumed archive is byte-identical to an uninterrupted
        # run even when a kill landed between a flush and the update.
        _sink_rollback(sink, ckpt)
    pending = specs[done:]
    if not pending:
        if ckpt is not None:
            ckpt.complete()
        if stats is not None:
            stats.update(merge_cache_stats([]))
        return 0
    bounds = _chunk_bounds(
        len(pending), effective_workers("parallel", workers, len(pending))
    )
    if len(bounds) > 1:
        total = 0
        for chunk, (start, stop) in zip(
            stream_sweep(pending, workers=workers, warm_cache=warm_cache, stats=stats),
            bounds,
        ):
            sink.write_many(chunk)
            total += len(chunk)
            if ckpt is not None:
                _flush_sink(sink)  # progress must never outrun the archive
                done += stop - start
                ckpt.update(done, archive_bytes=_sink_position(sink))
        if ckpt is not None:
            ckpt.complete()
        return total
    total = 0
    cache = ExecutionCache()
    disk, miss_key, rings = (
        _disk_warm_start(cache, specs) if warm_cache else (None, None, {})
    )
    for start in range(0, len(pending), batch_size):
        batch = pending[start : start + batch_size]
        records, cache = _execute_batched(batch, cache=cache)
        sink.write_many(records)
        total += len(records)
        if ckpt is not None:
            _flush_sink(sink)  # progress must never outrun the archive
            done += len(batch)
            ckpt.update(done, archive_bytes=_sink_position(sink))
    _disk_warm_store(disk, miss_key, cache, rings)
    if ckpt is not None:
        ckpt.complete()
    if stats is not None:
        stats.update(merge_cache_stats([cache.stats()]))
    return total


# -- the engine ----------------------------------------------------------------


class Engine:
    """Executes sweeps on a pluggable executor with per-process memoization.

    ``executor`` is ``"serial"`` (default), ``"batch"`` (one shared-
    cache batched round loop — the single-worker fast path),
    ``"process"`` (one spec per pool task), ``"parallel"`` (batched
    shards over the pool: multicore × shared caches), or ``"hosts"``
    (batched chunks over worker endpoints via
    :mod:`repro.runtime.remote` — requires ``hosts``); ``workers``
    bounds the pool (default: CPU count), ``warm_cache`` pre-seeds
    worker caches from the parent (and, with ``REPRO_CACHE_DIR`` set,
    from the persistent disk layer).  An
    :class:`~repro.experiment.spec.ExecutorSpec` pins all four knobs
    declaratively.  Adding a new backend — sharded, async, remote —
    means adding a new executor here, not rewriting callers.
    """

    def __init__(
        self,
        executor: str | ExecutorSpec = "serial",
        workers: int | None = None,
        warm_cache: bool = False,
        hosts: Sequence[str] | None = None,
    ) -> None:
        if isinstance(executor, ExecutorSpec):
            workers = executor.workers if workers is None else workers
            warm_cache = executor.warm_cache or warm_cache
            hosts = executor.hosts if hosts is None else hosts
            executor = executor.name
        if executor not in EXECUTORS:
            raise SolvabilityError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if workers is not None and workers < 1:
            raise SolvabilityError(f"workers must be >= 1, got {workers}")
        if executor == "hosts" and not hosts:
            raise SolvabilityError(
                "the hosts executor needs host endpoints "
                '(e.g. hosts=("local", "local"); see repro.runtime.remote)'
            )
        self.executor = executor
        self.workers = workers or (os.cpu_count() or 2)
        self.warm_cache = warm_cache
        self.hosts = tuple(hosts) if hosts else None

    def run(self, spec: ScenarioSpec) -> RunRecordSet:
        """Execute one spec in-process."""
        started = time.perf_counter()
        records = execute_spec(spec)
        return RunRecordSet(
            records=records,
            elapsed_seconds=time.perf_counter() - started,
            executor="serial",
        )

    def run_sweep(
        self, sweep: Sweep | Iterable[ScenarioSpec], *, trace=None, sink=None
    ) -> RunRecordSet:
        """Execute a batch; records come back in spec order regardless
        of which executor (or worker) ran each spec.

        ``trace`` is an optional structured sink receiving every bsm
        run's kernel events (in-process executors only — pool workers
        cannot stream events back).  ``sink`` is an optional
        :class:`~repro.experiment.sinks.RecordSink` that receives the
        records as well (a tee — the set is still returned; for
        memory-bounded execution use :func:`sweep_into`).
        """
        specs = tuple(sweep)
        started = time.perf_counter()
        if trace is not None and self.executor in OUT_OF_PROCESS_EXECUTORS:
            raise SolvabilityError(
                "structured tracing requires an in-process executor "
                f"('serial' or 'batch'), not the {self.executor!r} backend"
            )
        cache_stats: dict = {}
        if self.executor == "hosts":
            from repro.runtime.remote import run_hosts

            assert self.hosts is not None  # __init__ guarantees this
            records, cache_stats = run_hosts(
                specs, self.hosts, warm_cache=self.warm_cache
            )
        elif self.executor == "parallel":
            records, cache_stats = _execute_parallel(
                specs, self.workers, warm_cache=self.warm_cache
            )
        elif self.executor == "process" and len(specs) > 1:
            payloads = [spec.to_dict() for spec in specs]
            chunksize = max(1, len(payloads) // (self.workers * 4))
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=effective_workers("process", self.workers, len(payloads))
            ) as pool:
                rows_per_spec = list(
                    pool.map(_pool_worker, payloads, chunksize=chunksize)
                )
            records = tuple(
                RunRecord.from_dict(row) for rows in rows_per_spec for row in rows
            )
        elif self.executor == "batch":
            records, cache = _execute_batched(specs, trace=trace)
            cache_stats = cache.stats()
        else:
            records = tuple(
                record for spec in specs for record in execute_spec(spec, trace=trace)
            )
        if sink is not None:
            sink.write_many(records)
        return RunRecordSet(
            records=records,
            elapsed_seconds=time.perf_counter() - started,
            executor=self.executor,
            cache_stats=cache_stats,
        )

    def run_adaptive(
        self,
        initial: Sweep | Iterable[ScenarioSpec],
        refine: Callable[[RunRecordSet], Sequence[ScenarioSpec]],
        max_batches: int = 8,
    ) -> RunRecordSet:
        """Adaptive sweep: run a batch, let ``refine`` propose the next.

        ``refine`` sees everything gathered so far and returns the next
        batch of specs (empty to stop).  Useful for walking a frontier:
        run cheap points first, then spend runs only where the verdict
        flips.
        """
        gathered = self.run_sweep(initial)
        for _ in range(max_batches):
            next_specs = tuple(refine(gathered))
            if not next_specs:
                break
            gathered = gathered + self.run_sweep(next_specs)
        return gathered


# -- the façade ----------------------------------------------------------------


class Session:
    """One front door for every caller: CLI, benchmarks, examples, tests.

    A session wraps an :class:`Engine` plus the memoized oracle, and
    offers three granularities:

    * :meth:`solve` — a (memoized) solvability verdict;
    * :meth:`run` / :meth:`sweep` — records, through the configured
      executor;
    * :meth:`report` / :meth:`attack` / :meth:`execute` — full in-
      process report objects, for callers that need traces, outputs,
      or the attack scenarios' indistinguishability checks.
    """

    def __init__(
        self,
        executor: str | ExecutorSpec | None = None,
        workers: int | None = None,
        warm_cache: bool = False,
    ) -> None:
        if isinstance(executor, ExecutorSpec):
            self.engine = Engine(executor, workers=workers, warm_cache=warm_cache)
        else:
            self.engine = Engine(
                executor=_implied_executor(executor, workers),
                workers=workers,
                warm_cache=warm_cache,
            )

    # -- oracle ---------------------------------------------------------------

    def solve(self, setting: Setting) -> SolvabilityVerdict:
        """The paper's characterization for one setting (memoized)."""
        return cached_verdict(setting)

    # -- records --------------------------------------------------------------

    def run(self, spec: ScenarioSpec) -> RunRecordSet:
        """Execute one spec and return its records."""
        return self.engine.run(spec)

    def sweep(
        self,
        sweep: Sweep | Iterable[ScenarioSpec] | str,
        *,
        executor: str | ExecutorSpec | None = None,
        workers: int | None = None,
        warm_cache: bool | None = None,
        trace=None,
        sink=None,
    ) -> RunRecordSet:
        """Execute a sweep (or a preset, by name) and return all records.

        ``sink`` tees the records into a
        :class:`~repro.experiment.sinks.RecordSink` as well; for
        memory-bounded streaming without a returned set, use
        :meth:`sweep_into`.
        """
        if isinstance(sweep, str):
            sweep = self.preset(sweep)
        engine = self.engine
        if executor is not None or workers is not None or warm_cache is not None:
            if isinstance(executor, ExecutorSpec):
                engine = Engine(executor, workers=workers, warm_cache=bool(warm_cache))
            else:
                if executor is None:
                    # workers only makes sense on a pool: honor the request
                    # (unless the session is already pool-backed).
                    if workers is not None and self.engine.executor not in POOLED_EXECUTORS:
                        executor = "process"
                    else:
                        executor = self.engine.executor
                engine = Engine(
                    executor=executor,
                    workers=workers or self.engine.workers,
                    warm_cache=self.engine.warm_cache if warm_cache is None else warm_cache,
                )
        return engine.run_sweep(sweep, trace=trace, sink=sink)

    def sweep_into(
        self,
        sweep: Sweep | Iterable[ScenarioSpec] | str,
        sink,
        *,
        workers: int | None = None,
        warm_cache: bool | None = None,
        batch_size: int = 256,
        stats: dict | None = None,
        checkpoint: str | None = None,
    ) -> int:
        """Stream a sweep (or preset) into ``sink``; returns the record count.

        The façade over :func:`sweep_into`: records go to the sink in
        spec order without materializing a
        :class:`~repro.experiment.records.RunRecordSet`, so ensemble
        size is bounded by the sink's policy (spill threshold, running
        aggregates), not by memory.  ``checkpoint`` names a progress
        file enabling resume after a kill — see :func:`sweep_into`.
        """
        if isinstance(sweep, str):
            sweep = self.preset(sweep)
        return sweep_into(
            sweep,
            sink,
            workers=self.engine.workers if workers is None else workers,
            warm_cache=self.engine.warm_cache if warm_cache is None else bool(warm_cache),
            batch_size=batch_size,
            stats=stats,
            checkpoint=checkpoint,
        )

    def adaptive(self, initial, refine, max_batches: int = 8) -> RunRecordSet:
        """Adaptive sweep — see :meth:`Engine.run_adaptive`."""
        return self.engine.run_adaptive(initial, refine, max_batches=max_batches)

    # -- full reports ---------------------------------------------------------

    def report(self, spec: ScenarioSpec, *, trace=None) -> BSMReport:
        """Run one bSM spec in-process and return the full report
        (result, trace when ``record_trace``, property breakdown)."""
        if spec.family != "bsm":
            raise SolvabilityError(
                f"report() is for the bsm family, got {spec.family!r}; "
                "use attack()/run() for other families"
            )
        _, _, instance, adversary, _, _, drop_rule = _build_bsm_run(spec)
        return self.execute(
            instance,
            adversary,
            recipe=spec.recipe,
            max_rounds=spec.max_rounds,
            record_trace=spec.record_trace,
            runtime=spec.runtime,
            drop_rule=drop_rule,
            trace=trace,
            label=spec.label(),
        )

    def trace(self, spec: ScenarioSpec) -> tuple[BSMReport, TraceRecorder]:
        """Replay one bSM spec with kernel tracing attached.

        Returns the full report plus the recorded structured events —
        export them with :func:`repro.io.dump` (``kernel-trace`` format).
        """
        recorder = TraceRecorder()
        report = self.report(spec, trace=recorder)
        return report, recorder

    def execute(
        self,
        instance: BSMInstance,
        adversary=None,
        *,
        recipe: str | None = None,
        max_rounds: int | None = None,
        enforce_structure: bool = True,
        record_trace: bool = False,
        runtime: str = "lockstep",
        drop_rule=None,
        trace=None,
        label: str = "",
    ) -> BSMReport:
        """The imperative escape hatch: run a pre-built instance/adversary
        with the session's memoized keyring and verdict."""
        setting = instance.setting
        return run_bsm(
            instance,
            adversary,
            recipe=recipe,
            max_rounds=max_rounds,
            enforce_structure=enforce_structure,
            record_trace=record_trace,
            keyring=cached_keyring(setting.k) if setting.authenticated else None,
            verdict=cached_verdict(setting),
            runtime=runtime,
            drop_rule=drop_rule,
            trace=trace,
            label=label,
        )

    def attack(self, lemma: str):
        """Run a twisted-system construction; returns the full
        :class:`~repro.adversary.attacks.AttackReport`."""
        from repro.adversary.attacks import run_attack

        return run_attack(attack_spec(lemma))

    def roommates(self, spec: ScenarioSpec):
        """Run one roommates spec in-process and return the full report."""
        if spec.family != "roommates":
            raise SolvabilityError(f"roommates() needs a roommates spec, got {spec.family!r}")
        report, _, _ = _run_roommates_spec(spec)
        return report

    # -- presets --------------------------------------------------------------

    def preset(self, name: str) -> Sweep:
        """A named sweep from :mod:`repro.experiment.presets`."""
        from repro.experiment.presets import preset

        return preset(name)
