"""Lattice-position tags for run records.

Glue between :mod:`repro.rotations` and the experiment layer: given a
scenario spec and one of its records, decide *which* stable matching of
the effective instance the honest parties landed on, and stamp the
answer as a ``lattice_position=...`` record tag (see
:mod:`repro.rotations.report` for the tag grammar).  Ensembles can then
aggregate on the tag — e.g. "does the deterministic protocol always
pick the L-optimal element?" — and the service plane stamps it on
demand via ``POST /v1/run?lattice=1``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiment.records import RunRecord, RunRecordSet
from repro.experiment.spec import ScenarioSpec
from repro.matching.preferences import PreferenceProfile
from repro.rotations import (
    cached_poset,
    consistent_position,
    outputs_to_partners,
    position_tag,
    substituted_profile,
    unscored_tag,
)

__all__ = [
    "effective_profile",
    "lattice_position_tag",
    "stamp_lattice_positions",
]


def effective_profile(spec: ScenarioSpec) -> PreferenceProfile | None:
    """The instance the honest parties actually solve, when knowable.

    ``None`` means the run cannot be scored against a lattice: non-bsm
    families, incomplete profiles (rotations need perfect matchings),
    and adversaries that may alter preferences mid-protocol.  A silent
    adversary *is* scorable — its parties distribute nothing, so every
    honest party substitutes the default list (Lemma 1) and the
    effective instance is the spec's profile with those substitutions.
    """
    if spec.family != "bsm":
        return None
    kind = spec.adversary.kind if spec.adversary is not None else None
    if kind not in (None, "honest", "silent"):
        return None
    profile = spec.profile.build(spec.k)
    if any(len(profile.list_of(p)) != profile.k for p in profile.parties):
        return None  # incomplete instance: no perfect stable matchings
    if kind == "silent":
        assert spec.adversary is not None
        corrupted = spec.adversary.corrupted_parties(spec.setting())
        profile = substituted_profile(profile, corrupted)
    return profile


def lattice_position_tag(spec: ScenarioSpec, record: RunRecord) -> str:
    """The ``lattice_position=...`` tag for one record of ``spec``."""
    profile = effective_profile(spec)
    if profile is None or not record.outputs:
        return unscored_tag()
    poset = cached_poset(profile)
    outputs = outputs_to_partners(record.outputs)
    return position_tag(consistent_position(poset, outputs))


def stamp_lattice_positions(spec: ScenarioSpec, records: RunRecordSet) -> RunRecordSet:
    """``records`` with a lattice-position tag appended to each record."""
    return RunRecordSet(
        records=tuple(
            replace(record, tags=record.tags + (lattice_position_tag(spec, record),))
            for record in records
        ),
        elapsed_seconds=records.elapsed_seconds,
        executor=records.executor,
        cache_stats=records.cache_stats,
    )
