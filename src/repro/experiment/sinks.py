"""Streaming record sinks: consume runs as they happen.

A :class:`RecordSink` is the write side of the record path.  The engine
(:func:`repro.experiment.engine.sweep_into`, the ``sink=`` parameter on
:func:`~repro.experiment.engine.stream_sweep`) pushes records into a
sink as each shard or batch completes, so observables are available
without ever holding the full :class:`~repro.experiment.records.RunRecordSet`
in memory:

- :class:`MemorySink` — buffer everything (the classic behavior).
- :class:`NdjsonSink` — append records to a schema-stamped NDJSON file
  through the same line encoder the service plane streams with.
- :class:`StreamSink` — hand each encoded NDJSON chunk to a callback;
  this is what ``/v1/sweep`` writes through, which is why a sweep
  streamed over HTTP is byte-identical to one dumped to disk.
- :class:`SpillSink` — keep at most ``threshold`` records resident and
  spill overflow to an :class:`NdjsonSink`; ``peak_resident`` measures
  the memory envelope.
- :class:`AggregateSink` — incremental grouped aggregation (running
  counts/means/maxima, per-tag counts, optional histograms) that
  reproduces :meth:`RunRecordSet.aggregate` byte-for-byte, including
  the virtual ``lattice_position`` column.
- :class:`TeeSink` — fan one stream out to several sinks.
- :class:`NullSink` — count and discard.

Memory envelope: a sink sees one *write batch* at a time (a shard's
records under the pooled executors, ``batch_size`` specs' worth under
the in-process path), so peak resident records for a spilling pipeline
is ``threshold + largest write batch``, independent of sweep size.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.experiment.records import RunRecord, RunRecordSet, column_value

__all__ = [
    "RecordSink",
    "MemorySink",
    "NdjsonSink",
    "StreamSink",
    "SpillSink",
    "AggregateSink",
    "TeeSink",
    "NullSink",
]


class RecordSink:
    """Base class: an incremental consumer of :class:`RunRecord` streams.

    Subclasses implement :meth:`_accept`; the base class tracks
    ``count`` and open/closed state and provides the context-manager
    protocol (``with sink: ...`` closes it).  ``open()`` is idempotent
    and is called lazily on first write, so constructing a sink has no
    side effects (no file is touched until a record arrives — call
    ``open()`` yourself to force headers out early, as the service
    plane does for empty sweeps).
    """

    def __init__(self) -> None:
        self.count = 0
        self._opened = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    def open(self) -> None:
        """Idempotent; called automatically before the first write."""
        if self._opened:
            return
        if self._closed:
            raise ReproError(f"{type(self).__name__} is closed")
        self._opened = True
        self._open()

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._opened:
            self._close()

    def __enter__(self) -> "RecordSink":
        self.open()
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- writing --------------------------------------------------------------

    def write(self, record: RunRecord) -> None:
        """Consume one record."""
        self.write_many((record,))

    def write_many(self, records: Iterable[RunRecord]) -> None:
        """Consume a batch of records (one executor chunk, typically)."""
        batch = tuple(records)
        if not batch:
            return
        if self._closed:
            raise ReproError(f"{type(self).__name__} is closed")
        self.open()
        self._accept(batch)
        self.count += len(batch)

    # -- subclass hooks -------------------------------------------------------

    def _open(self) -> None:
        return None

    def _close(self) -> None:
        return None

    def _accept(self, batch: tuple[RunRecord, ...]) -> None:
        raise NotImplementedError


class MemorySink(RecordSink):
    """Buffer every record in memory (the pre-streaming behavior)."""

    def __init__(self) -> None:
        super().__init__()
        self.records: list[RunRecord] = []

    def _accept(self, batch: tuple[RunRecord, ...]) -> None:
        self.records.extend(batch)

    def recordset(self, *, elapsed_seconds: float = 0.0, executor: str = "") -> RunRecordSet:
        """The buffered records as a :class:`RunRecordSet`."""
        return RunRecordSet(
            records=tuple(self.records),
            elapsed_seconds=elapsed_seconds,
            executor=executor,
        )


class StreamSink(RecordSink):
    """Encode records as NDJSON chunks and hand them to a callback.

    ``emit`` receives the schema header (on :meth:`open`) and then one
    encoded string per write batch.  The encoding is exactly
    :func:`repro.io.ndjson.record_ndjson_line` per record — the same
    bytes :class:`NdjsonSink` appends to disk — so any transport built
    on this sink (the ``/v1/sweep`` NDJSON response, for one) is
    byte-identical to a file dump of the same records.
    """

    def __init__(self, emit: Callable[[str], None], *, header: bool = True) -> None:
        super().__init__()
        self._emit = emit
        self._header = header

    def _open(self) -> None:
        from repro.io.ndjson import records_ndjson_header

        if self._header:
            self._emit(records_ndjson_header())

    def _accept(self, batch: tuple[RunRecord, ...]) -> None:
        from repro.io.ndjson import record_ndjson_line

        self._emit("".join(record_ndjson_line(record) for record in batch))


class NdjsonSink(RecordSink):
    """Append records to a schema-stamped NDJSON file incrementally.

    ``append=True`` resumes an existing archive: the header is validated
    and a truncated trailing line from an interrupted writer is repaired
    first (see :func:`repro.io.ndjson.prepare_ndjson_append`).  The file
    handle stays open between writes; ``bytes_written`` counts what this
    sink added (header included).
    """

    def __init__(self, path, *, append: bool = False) -> None:
        super().__init__()
        self.path = path
        self.append = append
        self.bytes_written = 0
        self._handle = None

    def _open(self) -> None:
        from repro.io.ndjson import prepare_ndjson_append, records_ndjson_header

        fresh = prepare_ndjson_append(self.path) if self.append else True
        self._handle = open(self.path, "a" if self.append else "w", encoding="utf-8")
        if fresh:
            self._write_text(records_ndjson_header())

    def _accept(self, batch: tuple[RunRecord, ...]) -> None:
        from repro.io.ndjson import record_ndjson_line

        self._write_text("".join(record_ndjson_line(record) for record in batch))

    def _write_text(self, text: str) -> None:
        assert self._handle is not None
        self._handle.write(text)
        self.bytes_written += len(text.encode("utf-8"))

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def tell(self) -> Optional[int]:
        """The archive's byte offset (what a checkpoint should record).

        Meaningful after :meth:`flush`; ``None`` before the first write.
        """
        return self._handle.tell() if self._handle is not None else None

    def rollback(self, offset: int) -> None:
        """Truncate the archive to a checkpointed offset before resuming.

        Discards flushed-but-unacknowledged records a kill may have left
        past the last checkpoint update (offset 0 discards the whole
        archive — the checkpoint never acknowledged anything).  A
        write-mode sink already owns the archive from byte 0, so this is
        a no-op there; an append-mode sink may roll back until its first
        record is written (opened is fine — ``with sink:`` opens
        eagerly), after which it is too late.  A missing archive is fine
        (there is nothing to roll back).
        """
        if not self.append:
            return
        if self._opened:
            if self.count:
                raise ReproError("rollback must happen before any records are written")
            assert self._handle is not None
            self._handle.flush()
            if offset >= self._handle.tell():
                return
            self._handle.truncate(offset)
            if offset == 0:
                # The header went with everything else; restart the file.
                from repro.io.ndjson import records_ndjson_header

                self._write_text(records_ndjson_header())
            return
        try:
            with open(self.path, "r+", encoding="utf-8") as handle:
                handle.truncate(offset)
        except OSError:
            pass

    def _close(self) -> None:
        assert self._handle is not None
        self._handle.close()
        self._handle = None


class SpillSink(RecordSink):
    """Bound resident records, spilling overflow to an NDJSON file.

    Keeps at most ``threshold`` records in memory; when the buffer
    fills, its contents are appended to ``path`` (through
    :class:`NdjsonSink`, so the spill file is a valid record archive)
    and the buffer drains.  On :meth:`close`, *if* any spill happened,
    the remaining buffer is flushed too — an engaged spill file is
    always the complete record stream; an un-engaged run stays purely
    in memory.

    ``peak_resident`` records the high-water mark of buffered records
    (the memory envelope), ``spilled`` counts records written to disk,
    and :attr:`engaged` says whether the threshold was ever hit.
    """

    def __init__(self, threshold: int, path) -> None:
        super().__init__()
        if threshold < 1:
            raise ReproError(f"spill threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.path = path
        self.resident: list[RunRecord] = []
        self.peak_resident = 0
        self.spilled = 0
        self._spill: Optional[NdjsonSink] = None

    @property
    def engaged(self) -> bool:
        """True once any record has been spilled to disk."""
        return self.spilled > 0

    def _accept(self, batch: tuple[RunRecord, ...]) -> None:
        self.resident.extend(batch)
        self.peak_resident = max(self.peak_resident, len(self.resident))
        if len(self.resident) >= self.threshold:
            self._flush_resident()

    def _flush_resident(self) -> None:
        if not self.resident:
            return
        if self._spill is None:
            self._spill = NdjsonSink(self.path, append=True)
        self._spill.write_many(self.resident)
        self.spilled += len(self.resident)
        self.resident.clear()

    def _close(self) -> None:
        if self._spill is not None:
            # Complete the on-disk archive: everything resident joins
            # what already spilled.
            self._flush_resident()
            self._spill.close()

    def iter_all(self):
        """Every record seen, in order (from disk when spill engaged).

        Call after :meth:`close` when spilling may have happened — an
        engaged spill file only holds the full stream once the tail is
        flushed on close.
        """
        if self._spill is None:
            return iter(tuple(self.resident))
        from repro.io.ndjson import iter_records_ndjson

        return iter_records_ndjson(self.path)


class AggregateSink(RecordSink):
    """Incremental grouped aggregation over the record stream.

    Reproduces :meth:`RunRecordSet.aggregate` *byte-for-byte* without
    holding records: groups form in first-appearance order over the
    ``by`` columns (virtual columns like ``lattice_position`` included,
    via the shared :func:`~repro.experiment.records.column_value`
    accessor), and each group folds ``runs``, ``ok``, and running
    sum/max per metric — the same left-fold ``sum()`` the batch path
    computes, so ``round(sum/len, 6)`` agrees exactly.

    Extras beyond ``aggregate()``: ``tag_counts`` (running count per
    provenance tag) and optional fixed-width histograms (``bins`` maps a
    metric name to its bin width; read back with :meth:`histogram`).
    """

    def __init__(
        self,
        by: Sequence[str] = ("topology", "authenticated"),
        metrics: Sequence[str] = ("rounds", "messages", "bytes"),
        *,
        bins: Optional[Mapping[str, float]] = None,
    ) -> None:
        super().__init__()
        self.by = tuple(by)
        self.metrics = tuple(metrics)
        self.bins = dict(bins or {})
        # key -> [runs, ok, sums per metric, maxes per metric]
        self._groups: dict[tuple, list] = {}
        self.tag_counts: Counter = Counter()
        self._histograms: dict[str, Counter] = {m: Counter() for m in self.bins}

    def _accept(self, batch: tuple[RunRecord, ...]) -> None:
        for record in batch:
            key = tuple(column_value(record, column) for column in self.by)
            group = self._groups.get(key)
            if group is None:
                group = [0, 0, [0] * len(self.metrics), [None] * len(self.metrics)]
                self._groups[key] = group
            group[0] += 1
            if record.ok:
                group[1] += 1
            sums, maxes = group[2], group[3]
            for index, metric in enumerate(self.metrics):
                value = getattr(record, metric)
                sums[index] = sums[index] + value
                if maxes[index] is None or value > maxes[index]:
                    maxes[index] = value
            self.tag_counts.update(record.tags)
            for metric, width in self.bins.items():
                value = getattr(record, metric)
                self._histograms[metric][int(value // width)] += 1

    def summaries(self) -> list[dict]:
        """Per-group summaries, identical to ``RunRecordSet.aggregate()``."""
        result: list[dict] = []
        for key, (runs, ok, sums, maxes) in self._groups.items():
            summary: dict = dict(zip(self.by, key))
            summary["runs"] = runs
            summary["ok"] = ok
            for index, metric in enumerate(self.metrics):
                summary[f"mean_{metric}"] = round(sums[index] / runs, 6)
                summary[f"max_{metric}"] = maxes[index]
            result.append(summary)
        return result

    def to_json(self) -> str:
        """Canonical JSON of :meth:`summaries` — matches ``aggregate_json()``."""
        return json.dumps(self.summaries(), sort_keys=True)

    def histogram(self, metric: str) -> dict[float, int]:
        """Counts per bin start for a binned metric, in bin order."""
        if metric not in self.bins:
            raise ReproError(
                f"metric {metric!r} has no bin width; binned: {sorted(self.bins)}"
            )
        width = self.bins[metric]
        counts = self._histograms[metric]
        return {index * width: counts[index] for index in sorted(counts)}

    def mean(self, metric: str) -> float:
        """Stream-wide mean of one metric (across all groups)."""
        index = self.metrics.index(metric)
        total = sum(group[2][index] for group in self._groups.values())
        runs = sum(group[0] for group in self._groups.values())
        return total / runs if runs else 0.0


class TeeSink(RecordSink):
    """Fan one record stream out to several sinks."""

    def __init__(self, *sinks: RecordSink) -> None:
        super().__init__()
        self.sinks = tuple(sinks)

    def _open(self) -> None:
        for sink in self.sinks:
            sink.open()

    def _accept(self, batch: tuple[RunRecord, ...]) -> None:
        for sink in self.sinks:
            sink.write_many(batch)

    def _close(self) -> None:
        for sink in self.sinks:
            sink.close()


class NullSink(RecordSink):
    """Count records and drop them (for pure-throughput measurement)."""

    def _accept(self, batch: tuple[RunRecord, ...]) -> None:
        return None
