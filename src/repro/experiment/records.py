"""Columnar run records: what a sweep returns.

One :class:`RunRecord` is the flat, JSON-ready distillation of one
protocol execution (or one scenario of an attack construction, or one
offline algorithm run).  A :class:`RunRecordSet` holds many of them in
spec order and offers the operations every benchmark used to hand-roll:
column extraction, grouped aggregation, and CSV/JSON export.

Records are deliberately *deterministic*: they carry no wall-clock or
host information, so the same sweep produces byte-identical record sets
(and aggregates) through the serial and process-pool executors — the
engine's cross-executor regression tests rely on this.  Timing lives on
the record set as metadata (``elapsed_seconds``, ``executor``) and is
excluded from serialization and equality.
"""

from __future__ import annotations

import csv
import io as _io
import json
from dataclasses import dataclass, field, fields
from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "RunRecord",
    "RunRecordSet",
    "COLUMNS",
    "VIRTUAL_COLUMNS",
    "column_value",
    "lattice_position",
]


@dataclass(frozen=True)
class RunRecord:
    """One run, flattened to plain scalars and strings."""

    scenario: str
    family: str
    topology: str = ""
    authenticated: bool = False
    k: int = 0
    tL: int = 0
    tR: int = 0
    seed: int = 0
    recipe: str = ""
    solvable: bool | None = None
    theorem: str = ""
    adversary: str = "none"
    link: str = ""
    corrupted: int = 0
    ok: bool = False
    termination: bool = False
    symmetry: bool = False
    stability: bool = False
    non_competition: bool = False
    violations: tuple[str, ...] = ()
    rounds: int = 0
    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    matched: int = 0
    proposals: int = 0
    #: Sum of 1-indexed partner ranks on the receiving side (offline
    #: Gale–Shapley runs only; 0 elsewhere).  The proposer-side analogue
    #: is ``proposals``, which equals the sum of 1-indexed proposer
    #: partner ranks — together they feed the Mertens/mean-field theory
    #: oracles in :mod:`repro.ensembles`.
    receiver_rank: int = 0
    outputs: tuple[tuple[str, str], ...] = ()
    #: Provenance tags copied from the spec (``ScenarioSpec.tags``) —
    #: e.g. the conformance harness's ensemble coordinates.
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "violations", tuple(self.violations))
        object.__setattr__(
            self, "outputs", tuple((str(p), str(v)) for p, v in self.outputs)
        )
        object.__setattr__(self, "tags", tuple(str(t) for t in self.tags))

    def to_dict(self) -> dict:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["violations"] = list(self.violations)
        data["outputs"] = [list(pair) for pair in self.outputs]
        data["tags"] = list(self.tags)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunRecord":
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        if "violations" in kwargs:
            kwargs["violations"] = tuple(kwargs["violations"])
        if "outputs" in kwargs:
            kwargs["outputs"] = tuple(tuple(pair) for pair in kwargs["outputs"])
        if "tags" in kwargs:
            kwargs["tags"] = tuple(kwargs["tags"])
        return cls(**kwargs)


#: Column order for tabular export (CSV headers, ``columns()`` keys).
COLUMNS: tuple[str, ...] = tuple(
    f.name for f in fields(RunRecord) if f.name not in ("violations", "outputs", "tags")
)

#: Tag prefix stamped by :mod:`repro.rotations` (kept in sync with
#: ``repro.rotations.report.LATTICE_TAG_PREFIX``; records must not
#: import the lattice layer).
_LATTICE_TAG_PREFIX = "lattice_position="

#: Columns derived from tags rather than stored as dataclass fields.
VIRTUAL_COLUMNS: tuple[str, ...] = ("lattice_position",)


def lattice_position(record: RunRecord) -> str:
    """The record's ``lattice_position=`` tag value, or ``""`` if untagged."""
    for tag in record.tags:
        if tag.startswith(_LATTICE_TAG_PREFIX):
            return tag[len(_LATTICE_TAG_PREFIX):]
    return ""


def column_value(record: RunRecord, name: str):
    """One column value, resolving virtual columns like ``lattice_position``.

    The single accessor behind both :meth:`RunRecordSet.aggregate` and
    the incremental :class:`repro.experiment.sinks.AggregateSink`, so
    the two aggregation paths cannot drift.
    """
    if name == "lattice_position":
        return lattice_position(record)
    return getattr(record, name)


@dataclass
class RunRecordSet:
    """An ordered, columnar collection of run records.

    Behaves like a sequence of :class:`RunRecord` and like a small
    column store: ``column("rounds")`` gives the column as a list,
    ``aggregate(by=("topology", "authenticated"))`` folds the set into
    per-group summaries.  ``elapsed_seconds`` and ``executor`` describe
    how the batch was executed and are *not* part of equality or
    serialization.
    """

    records: tuple[RunRecord, ...] = ()
    elapsed_seconds: float = field(default=0.0, compare=False)
    executor: str = field(default="", compare=False)
    #: Shared-cache statistics when a batch executor ran (hit rates per
    #: memo family); empty otherwise.  Metadata like the timing fields:
    #: excluded from equality and serialization.
    cache_stats: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        self.records = tuple(self.records)

    # -- sequence protocol ----------------------------------------------------

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def __add__(self, other: "RunRecordSet") -> "RunRecordSet":
        return RunRecordSet(
            records=self.records + tuple(other),
            elapsed_seconds=self.elapsed_seconds + getattr(other, "elapsed_seconds", 0.0),
            executor=self.executor or getattr(other, "executor", ""),
            cache_stats=dict(self.cache_stats or getattr(other, "cache_stats", {})),
        )

    # -- columnar views -------------------------------------------------------

    def column(self, name: str) -> list:
        """One column, in record order (virtual columns included)."""
        return [column_value(record, name) for record in self.records]

    def columns(self) -> dict[str, list]:
        """Every scalar column, keyed by name."""
        return {name: self.column(name) for name in COLUMNS}

    def where(self, predicate: Callable[[RunRecord], bool]) -> "RunRecordSet":
        """The records satisfying ``predicate`` (order preserved)."""
        return RunRecordSet(
            records=tuple(r for r in self.records if predicate(r)),
            executor=self.executor,
        )

    @property
    def ok_count(self) -> int:
        """Runs where every checked property held."""
        return sum(1 for record in self.records if record.ok)

    @property
    def failures(self) -> "RunRecordSet":
        """bSM-family records on solvable settings that still failed."""
        return self.where(
            lambda r: r.family == "bsm" and r.solvable is True and not r.ok
        )

    # -- aggregation ----------------------------------------------------------

    def aggregate(
        self,
        by: Sequence[str] = ("topology", "authenticated"),
        metrics: Sequence[str] = ("rounds", "messages", "bytes"),
    ) -> list[dict]:
        """Fold the set into per-group summaries.

        Groups are the distinct values of the ``by`` columns, in first-
        appearance order.  Each summary carries the group key, ``runs``,
        ``ok`` (count), and ``mean_*``/``max_*`` for every metric.
        ``by`` may name the virtual ``lattice_position`` column to score
        an ensemble by its position in the stable-matching lattice.
        Deterministic: equal record sets aggregate byte-identically.
        """
        groups: dict[tuple, list[RunRecord]] = {}
        for record in self.records:
            key = tuple(column_value(record, column) for column in by)
            groups.setdefault(key, []).append(record)
        summaries: list[dict] = []
        for key, members in groups.items():
            summary: dict = dict(zip(by, key))
            summary["runs"] = len(members)
            summary["ok"] = sum(1 for r in members if r.ok)
            for metric in metrics:
                values = [getattr(r, metric) for r in members]
                summary[f"mean_{metric}"] = round(sum(values) / len(values), 6)
                summary[f"max_{metric}"] = max(values)
            summaries.append(summary)
        return summaries

    def aggregate_json(self, **kwargs) -> str:
        """Canonical JSON of :meth:`aggregate` — the cross-executor invariant."""
        return json.dumps(self.aggregate(**kwargs), sort_keys=True)

    def summary(self) -> str:
        """One line: size, pass rate, totals."""
        total_messages = sum(self.column("messages"))
        text = (
            f"{len(self.records)} runs, {self.ok_count} ok, "
            f"{len(self.failures)} unexpected failures, "
            f"{total_messages} messages"
        )
        if self.elapsed_seconds:
            text += f", {self.elapsed_seconds:.2f}s ({self.executor})"
        return text

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {"records": [record.to_dict() for record in self.records]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunRecordSet":
        return cls(records=tuple(RunRecord.from_dict(r) for r in data["records"]))

    def to_json(self) -> str:
        """Canonical JSON (sorted keys; no timing metadata)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunRecordSet":
        return cls.from_dict(json.loads(text))

    def to_csv(self) -> str:
        """CSV text with one row per record (scalar columns only)."""
        buffer = _io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(COLUMNS)
        for record in self.records:
            writer.writerow([getattr(record, name) for name in COLUMNS])
        return buffer.getvalue()

    @classmethod
    def from_iter(cls, records: Iterable[RunRecord]) -> "RunRecordSet":
        """Rebuild a set from any record stream (order preserved).

        The streaming complement of :meth:`from_dict`: pairs with
        :func:`repro.io.iter_records_ndjson` to reload an NDJSON archive
        without an intermediate list of dictionaries.
        """
        return cls(records=tuple(records))

    @classmethod
    def concat(cls, sets: Iterable["RunRecordSet"]) -> "RunRecordSet":
        """Concatenate several record sets, preserving order."""
        merged = RunRecordSet()
        for one in sets:
            merged = merged + one
        return merged
