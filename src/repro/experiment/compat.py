"""Deprecation shims: the old free-function surface, over the façade.

Before the experiment layer existed, ``repro`` exported free functions
(``run_bsm``, ``make_adversary``, ``is_solvable``) that every caller
wired together by hand.  These shims keep that surface importable from
the top-level package while routing execution through a shared
:class:`~repro.experiment.engine.Session` (so even legacy callers get
the memoized oracle and keyrings), and emit a :class:`DeprecationWarning`
pointing at the replacement.

The underlying primitives in :mod:`repro.core.runner` and
:mod:`repro.core.solvability` are *not* deprecated — protocol-level
code and tests use them directly.  Only the top-level convenience
surface moved.
"""

from __future__ import annotations

import warnings

from repro.core.problem import BSMInstance, Setting
from repro.core.runner import BSMReport
from repro.core.runner import make_adversary as _make_adversary
from repro.core.solvability import SolvabilityVerdict
from repro.experiment.engine import Session

__all__ = ["run_bsm", "make_adversary", "is_solvable"]

#: One shared session so legacy callers benefit from the caches too.
_SESSION = Session()


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.{old} is a compatibility shim; prefer {new} "
        "(see docs/api.md for the mapping)",
        DeprecationWarning,
        stacklevel=3,
    )


def run_bsm(instance: BSMInstance, adversary=None, **kwargs) -> BSMReport:
    """Deprecated shim: run one bSM execution end to end.

    Prefer ``Session().report(ScenarioSpec(...))`` for declarative runs
    or ``Session().execute(instance, adversary)`` for pre-built objects;
    both memoize keyrings and verdicts across runs.
    """
    _warn("run_bsm", "repro.Session.report/execute")
    return _SESSION.execute(instance, adversary, **kwargs)


def make_adversary(instance: BSMInstance, corrupted, **kwargs):
    """Deprecated shim: build a canned adversary.

    Prefer declaring an :class:`~repro.experiment.spec.AdversarySpec`
    on a :class:`~repro.experiment.spec.ScenarioSpec`.
    """
    _warn("make_adversary", "repro.AdversarySpec")
    return _make_adversary(instance, corrupted, **kwargs)


def is_solvable(setting: Setting) -> SolvabilityVerdict:
    """Deprecated shim: the characterization oracle for one setting.

    Prefer ``Session().solve(setting)`` (memoized) or the primitive
    :func:`repro.core.solvability.is_solvable`.
    """
    _warn("is_solvable", "repro.Session.solve")
    return _SESSION.solve(setting)
