"""The paper, mapped to code.

A machine-readable index from every definition, theorem, lemma and
figure of *Byzantine Stable Matching* (arXiv:2502.05889) to the
artifacts implementing, using, or demonstrating it.  The test suite
validates every reference by import, so the map cannot rot silently;
``python -m repro paper`` prints it.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field

__all__ = ["PaperItem", "PAPER_MAP", "resolve_reference", "render_map"]


@dataclass(frozen=True)
class PaperItem:
    """One paper artifact and where it lives in this repository."""

    ref: str
    statement: str
    code: tuple[str, ...]
    demos: tuple[str, ...] = field(default_factory=tuple)


PAPER_MAP: tuple[PaperItem, ...] = (
    PaperItem(
        ref="Theorem 1 (Gale-Shapley)",
        statement="A deterministic algorithm AG-S returns a stable matching.",
        code=("repro.matching.gale_shapley:gale_shapley",),
        demos=("tests/test_gale_shapley.py", "benchmarks/bench_gale_shapley_scaling.py"),
    ),
    PaperItem(
        ref="Definition 1 (bSM)",
        statement="Termination, symmetry, stability, non-competition for honest parties.",
        code=(
            "repro.core.problem:BSMInstance",
            "repro.core.verdict:check_bsm",
        ),
        demos=("tests/test_verdict.py",),
    ),
    PaperItem(
        ref="Definition 2 (BB)",
        statement="Byzantine Broadcast: termination, validity, consistency.",
        code=(
            "repro.consensus.dolev_strong:DolevStrongBB",
            "repro.consensus.general_adversary:GeneralAdversaryBB",
            "repro.consensus.omission_bb:PiBB",
        ),
        demos=("tests/test_dolev_strong.py", "tests/test_general_adversary.py"),
    ),
    PaperItem(
        ref="Definition 3 (BA)",
        statement="Byzantine Agreement: termination, validity, agreement.",
        code=(
            "repro.consensus.phase_king:PiBA",
            "repro.consensus.general_adversary:GeneralAdversaryBA",
        ),
        demos=("tests/test_phase_king.py",),
    ),
    PaperItem(
        ref="Lemma 1",
        statement="Whenever BB is available, bSM is solvable (broadcast lists, run AG-S).",
        code=("repro.core.bb_based:BBCollectionProtocol", "repro.core.bb_based:make_bb_based_party"),
        demos=("tests/test_bb_based.py",),
    ),
    PaperItem(
        ref="Section 3 (sSM) + Lemma 2",
        statement="Simplified stable matching reduces to bSM via favorite-first lists.",
        code=(
            "repro.core.problem:SSMInstance",
            "repro.core.simplified:favorite_first_list",
            "repro.core.simplified:run_ssm",
            "repro.core.verdict:check_ssm",
        ),
        demos=("tests/test_run_ssm.py",),
    ),
    PaperItem(
        ref="Lemma 3",
        statement="Party splitting: a 2k-party protocol yields a 2d-party protocol.",
        code=(
            "repro.core.simplified:SimulatingParty",
            "repro.core.simplified:block_partition",
            "repro.core.simplified:split_instance",
        ),
        demos=("tests/test_simplified.py",),
    ),
    PaperItem(
        ref="Lemma 4 / Appendix A.3",
        statement="BB is solvable in fully-connected unauthenticated networks under Q3.",
        code=(
            "repro.adversary.structures:ProductThresholdStructure",
            "repro.adversary.structures:satisfies_q3",
            "repro.consensus.general_adversary:GeneralAdversaryBB",
        ),
        demos=("tests/test_structures.py", "tests/test_general_adversary.py"),
    ),
    PaperItem(
        ref="Lemma 5 / Figure 2",
        statement="No sSM at tL = tR = 1 with n = 6, fully-connected unauthenticated.",
        code=("repro.adversary.attacks:lemma5_spec", "repro.adversary.virtual:VirtualSystem"),
        demos=("benchmarks/bench_fig2_fully_connected_attack.py", "tests/test_attacks.py"),
    ),
    PaperItem(
        ref="Lemma 6 / Corollaries 1-2",
        statement="Majority relay: a disconnected side is virtually fully-connected when the other side has honest majority.",
        code=("repro.core.relays:MajorityRelayLink",),
        demos=("tests/test_relays.py", "benchmarks/bench_relay_ablation.py"),
    ),
    PaperItem(
        ref="Lemma 7 / Figure 3",
        statement="No sSM at tR >= k/2 in one-sided/bipartite unauthenticated networks.",
        code=("repro.adversary.attacks:lemma7_spec",),
        demos=("benchmarks/bench_fig3_bipartite_attack.py",),
    ),
    PaperItem(
        ref="Lemma 8 / Corollaries 3-4",
        statement="Signed relay: one honest forwarder suffices with a PKI.",
        code=("repro.core.relays:SignedRelayLink",),
        demos=("tests/test_relays.py",),
    ),
    PaperItem(
        ref="Lemma 10",
        statement="Timed signed relay: omissions only if the whole forwarding side is byzantine.",
        code=("repro.core.relays:TimedSignedRelayLink", "repro.core.relays:timed_forward_duty"),
        demos=("tests/test_relays.py", "tests/test_relay_properties.py"),
    ),
    PaperItem(
        ref="Lemmas 9, 11, 12 / Section 5.2 (PiBSM)",
        statement="bSM in bipartite authenticated networks with tL < k/3, tR up to k.",
        code=(
            "repro.core.bipartite_auth:PiBSMComputing",
            "repro.core.bipartite_auth:PiBSMResponding",
            "repro.core.bipartite_auth:pibsm_decision_rounds",
        ),
        demos=("tests/test_pibsm.py", "docs/protocol_walkthrough.md"),
    ),
    PaperItem(
        ref="Lemma 13 / Figure 4 / Corollary 5",
        statement="No bSM at tR = k, tL >= k/3 in one-sided (hence bipartite) authenticated networks.",
        code=("repro.adversary.attacks:lemma13_spec",),
        demos=("benchmarks/bench_fig4_onesided_attack.py",),
    ),
    PaperItem(
        ref="Theorems 2-7 (characterization)",
        statement="Tight solvability conditions across all six settings.",
        code=("repro.core.solvability:is_solvable",),
        demos=("benchmarks/bench_table1_solvability.py", "tests/test_solvability.py"),
    ),
    PaperItem(
        ref="Theorems 8-9 / Appendix A.6",
        statement="PiKing/PiBA/PiBB with termination + weak agreement under omissions.",
        code=(
            "repro.consensus.phase_king:PiKing",
            "repro.consensus.phase_king:PiBA",
            "repro.consensus.omission_bb:PiBB",
        ),
        demos=("tests/test_phase_king.py", "tests/test_omission_bb.py"),
    ),
    PaperItem(
        ref="Theorem 5 / Dolev-Strong [6]",
        statement="Authenticated fully-connected networks solve bSM for any corruption budgets.",
        code=("repro.consensus.dolev_strong:DolevStrongBB",),
        demos=("tests/test_dolev_strong.py",),
    ),
    PaperItem(
        ref="Section 6 future work: stable roommates",
        statement="The single-set variant needs refined definitions (no guaranteed solution).",
        code=(
            "repro.matching.roommates:stable_roommates",
            "repro.core.roommates_bsm:run_roommates",
        ),
        demos=("tests/test_roommates_bsm.py", "benchmarks/bench_roommates_extension.py"),
    ),
    PaperItem(
        ref="Section 1 related variants [13]",
        statement="Stable matching with partial preference lists; some parties stay unmatched.",
        code=(
            "repro.matching.incomplete:gale_shapley_incomplete",
            "repro.matching.incomplete:IncompleteProfile",
        ),
        demos=("tests/test_incomplete.py",),
    ),
    PaperItem(
        ref="Related work on almost-stability [11, 18, 24]",
        statement="Blocking-pair counts and rank-regret metrics for near-stable matchings.",
        code=(
            "repro.matching.metrics:blocking_pair_count",
            "repro.matching.metrics:max_blocking_regret",
        ),
        demos=("tests/test_metrics.py",),
    ),
)


def resolve_reference(reference: str):
    """Import ``module:attribute`` and return the attribute (or module)."""
    if ":" in reference:
        module_name, attribute = reference.split(":", 1)
        module = importlib.import_module(module_name)
        return getattr(module, attribute)
    return importlib.import_module(reference)


def render_map() -> str:
    """Human-readable rendering of the full map."""
    lines = []
    for item in PAPER_MAP:
        lines.append(item.ref)
        lines.append(f"  {item.statement}")
        for code_ref in item.code:
            lines.append(f"    code: {code_ref}")
        for demo in item.demos:
            lines.append(f"    demo: {demo}")
        lines.append("")
    return "\n".join(lines)
