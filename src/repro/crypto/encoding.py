"""Canonical, deterministic payload encoding.

Signatures must be computed over *bytes*, and two honest parties must
encode the same logical payload to the same bytes.  This module defines
a small structural encoding for the value types protocols actually
send: ``None``, ``bool``, ``int``, ``str``, ``bytes``, ``float``,
:class:`~repro.ids.PartyId`, tuples/lists, frozensets/sets (encoded in
sorted order), dicts (sorted by encoded key), and
:class:`~repro.crypto.signatures.Signature` (by duck-typed fields, to
avoid a circular import).

The encoding is type-tagged and length-prefixed, so it is injective:
distinct payloads never collide.  ``encoded_size`` doubles as the byte
accounting used by the message-complexity benchmarks.
"""

from __future__ import annotations

import struct

from repro.errors import ProtocolError
from repro.ids import PartyId

__all__ = [
    "encode",
    "encoded_size",
    "EncodeMemo",
    "SizeMemo",
    "pack_ranking",
    "unpack_ranking",
    "pack_profile",
]

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_PARTY = b"P"
_TAG_TUPLE = b"L"
_TAG_SET = b"Z"
_TAG_DICT = b"M"
_TAG_SIG = b"G"


def _length_prefixed(raw: bytes) -> bytes:
    return struct.pack(">I", len(raw)) + raw


#: Leaf types whose ``==``/``hash`` agree exactly with encoding equality
#: *given the type tag* — safe to canonicalize by ``(type, value)``.
#: ``float`` is deliberately absent: ``-0.0 == 0.0`` (same hash) yet
#: their IEEE-754 encodings differ, so floats are never memoized (and
#: a tuple containing one falls back to direct encoding).
_EXACT_LEAF_TYPES = frozenset(
    (bool, int, str, bytes, type(None), PartyId)
)

_SIGNATURE_CLASS = None


def _signature_class():
    """The Signature class, resolved lazily (signatures imports us)."""
    global _SIGNATURE_CLASS
    if _SIGNATURE_CLASS is None:
        from repro.crypto.signatures import Signature

        _SIGNATURE_CLASS = Signature
    return _SIGNATURE_CLASS


class EncodeMemo:
    """A hash-consing memo for canonical encodings.

    Naive value-keyed memoization is unsound here: Python equality is
    coarser than the encoding (``True == 1 == 1.0``, same hashes,
    different canonical bytes), so equal-but-differently-typed values
    would alias each other's entries.  The memo instead canonicalizes
    structurally, which is both exact and fast:

    * the first object seen with a given structure becomes its
      **canonical object**: it gets an entry in an **identity map**
      (``id -> bytes``; O(1), no hashing) and its id becomes the
      structure's **canonical id**.  Canonical entries pin their
      objects, so ids are never recycled while the memo lives (it is
      scoped to one batch).  Structural duplicates are *not* pinned —
      they resolve to the canonical bytes/id and are forgotten, so the
      identity map stays bounded by the number of distinct structures;
    * **leaves** canonicalize by ``(type, value)`` — type-tagged keys
      keep ``True``/``1``/``1.0`` apart while still sharing across
      distinct equal objects;
    * **tuples/lists** canonicalize by their children's canonical ids
      (an int-tuple key: no traversal, C-speed hashing).  Two sibling
      runs rebuilding the same message tree bottom out in shared
      leaves, so the cascade dedupes every level and the whole
      re-encoding is skipped;
    * sets/dicts (rare in payloads) and unhashable values stay on the
      identity map alone.

    The execution cache layers signatures and verification verdicts on
    top, keyed by the canonical bytes this memo returns — bytes
    equality is exact, and the shared bytes objects cache their hash.
    """

    __slots__ = ("_by_id", "_leaves", "_structs")

    def __init__(self) -> None:
        #: id(obj) -> (pinned obj, canonical bytes, canonical id) —
        #: the canonical id is the first structurally-identical object.
        self._by_id: dict[int, tuple[object, bytes, int]] = {}
        #: (type, value) -> (pinned obj, canonical bytes, canonical id)
        self._leaves: dict[tuple, tuple[object, bytes, int]] = {}
        #: (child canonical ids...) -> (pinned obj, canonical bytes, canonical id)
        self._structs: dict[tuple, tuple[object, bytes, int]] = {}

    def entry_counts(self) -> dict:
        """Sizes of the three memo tables (for cache introspection)."""
        return {
            "identity_entries": len(self._by_id),
            "leaf_entries": len(self._leaves),
            "struct_entries": len(self._structs),
        }

    def snapshot(self) -> tuple[object, ...]:
        """The canonical objects of the leaf/struct tables, pickle-ready.

        Identity entries are deliberately excluded: ids are process-local
        and the pinned objects they key would re-register anyway when the
        canonical values are re-encoded.  Leaves come first so a restore
        replays the same bottom-up cascade the original encodes did; the
        order is the tables' insertion order, hence deterministic for a
        deterministic producer.
        """
        return tuple(entry[0] for entry in self._leaves.values()) + tuple(
            entry[0] for entry in self._structs.values()
        )

    def restore(self, values: "tuple[object, ...] | list[object]") -> None:
        """Warm this memo from a :meth:`snapshot` (possibly unpickled).

        Re-encodes every value through the normal path, so the restored
        entries are exactly what encoding those values here would have
        produced — restoring can never corrupt canonical bytes, only
        pre-pay them.  Unpickled values lose interning (``PartyId``
        constructors intern, pickle does not) but the leaf tables key by
        ``(type, value)``, so later interned instances still hit.
        """
        for value in values:
            encode(value, self)

    def _memoized_encode(self, value: object) -> bytes:
        """Encode ``value``, registering canonical entries.

        Only provably immutable values are *stored*: exact leaf types,
        tuples of storable values, frozensets, and signatures.  A
        mutable value (list, set, dict, foreign object) could change
        between sends, so pinning its bytes by id would serve stale
        encodings; such values — and any tuple containing one — encode
        directly every time (their immutable substructures still hit).
        """
        return self._cons(value)[0]

    def _cons(self, value: object) -> "tuple[bytes, int | None]":
        """Canonicalize ``value``; returns ``(bytes, canonical id)``.

        Only the **first** object seen with a given structure is pinned
        (identity entry + leaf/struct entry).  A structural *duplicate*
        — a fresh object whose leaf key or child-canonical-id tuple
        already has an entry — returns the canonical bytes and id
        without being registered anywhere, so the identity map is
        bounded by the number of *distinct* structures, not by the
        number of objects a sweep churns through (historically ~365k
        pinned duplicates per full-tier sweep).  The cost is that
        re-encoding the same duplicate object re-walks its (canonical,
        already-consed) children; the canonical id still propagates
        upward, so enclosing tuples dedupe as before.  Unstorable
        values return a ``None`` id.
        """
        cls = value.__class__
        if cls is tuple:
            by_id = self._by_id
            child_ids = []
            child_bytes = []
            for item in value:
                entry = by_id.get(id(item))
                if entry is not None:
                    child_ids.append(entry[2])
                    child_bytes.append(entry[1])
                    continue
                raw, canonical = self._cons(item)
                if canonical is None:  # unstorable child: no consing here
                    return _encode(value, self), None
                child_ids.append(canonical)
                child_bytes.append(raw)
            # The struct key is the child canonical-id tuple; its
            # length *is* the element count the encoding prefixes.
            skey = tuple(child_ids)
            hit = self._structs.get(skey)
            if hit is not None:
                return hit[1], hit[2]
            raw = _TAG_TUPLE + struct.pack(">I", len(value)) + b"".join(child_bytes)
            entry = (value, raw, id(value))
            self._structs[skey] = entry
            by_id[id(value)] = entry
            return raw, entry[2]
        if cls in _EXACT_LEAF_TYPES:
            lkey = (cls, value)
            hit = self._leaves.get(lkey)
            if hit is not None:
                return hit[1], hit[2]
            raw = _encode(value, self)
            entry = (value, raw, id(value))
            self._leaves[lkey] = entry
            self._by_id[id(value)] = entry
            return raw, entry[2]
        if cls is frozenset or cls is _signature_class():
            # Immutable but not canonicalized: identity entries only.
            # (The execution cache's bytes-keyed sign memo already
            # shares one object per logical signature, so identity
            # covers signatures well.)
            raw = _encode(value, self)
            self._by_id[id(value)] = (value, raw, id(value))
            return raw, id(value)
        # Mutable or foreign: never stored.
        return _encode(value, self), None


def encode(value: object, memo: "EncodeMemo | None" = None) -> bytes:
    """Canonically encode ``value``; raises ``ProtocolError`` on foreign types.

    ``memo`` is an optional :class:`EncodeMemo` threaded through the
    recursion: shared substructures (and whole payloads) encode once
    per memo lifetime.  The encoding is a pure function of the value
    and memo keys are type-exact (see :class:`EncodeMemo`), so memoized
    and direct results are identical — the batched runtime leans on
    this for its shared cache.
    """
    if memo is not None:
        entry = memo._by_id.get(id(value))
        if entry is not None:
            return entry[1]
        return memo._memoized_encode(value)
    return _encode(value, None)


def _encode(value: object, memo: "EncodeMemo | None") -> bytes:
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        raw = str(value).encode("ascii")
        return _TAG_INT + _length_prefixed(raw)
    if isinstance(value, float):
        return _TAG_FLOAT + struct.pack(">d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return _TAG_STR + _length_prefixed(raw)
    if isinstance(value, bytes):
        return _TAG_BYTES + _length_prefixed(value)
    if isinstance(value, PartyId):
        raw = str(value).encode("ascii")
        return _TAG_PARTY + _length_prefixed(raw)
    if isinstance(value, (tuple, list)):
        body = b"".join(encode(item, memo) for item in value)
        return _TAG_TUPLE + struct.pack(">I", len(value)) + body
    if isinstance(value, (frozenset, set)):
        encoded_items = sorted(encode(item, memo) for item in value)
        body = b"".join(encoded_items)
        return _TAG_SET + struct.pack(">I", len(encoded_items)) + body
    if isinstance(value, dict):
        encoded_entries = sorted(
            (encode(key, memo), encode(val, memo)) for key, val in value.items()
        )
        body = b"".join(key + val for key, val in encoded_entries)
        return _TAG_DICT + struct.pack(">I", len(encoded_entries)) + body
    # Signature is encoded structurally (duck-typed to avoid an import cycle).
    signer = getattr(value, "signer", None)
    tag = getattr(value, "tag", None)
    if isinstance(signer, PartyId) and isinstance(tag, bytes):
        return _TAG_SIG + encode(signer, memo) + _length_prefixed(tag)
    raise ProtocolError(
        f"cannot canonically encode value of type {type(value).__name__}: {value!r}"
    )


class SizeMemo:
    """A hash-consing memo for canonical-encoding *sizes*.

    The per-message ``payload_size`` accounting only needs ``len(bytes)``
    — building the canonical bytes just to measure them was ~40% of a
    scale-tier ``table1_solvability`` pass.  This memo mirrors
    :class:`EncodeMemo`'s structural canonicalization exactly (identity
    map, type-exact leaf keys, child-canonical-id struct keys, the same
    storability rules) but stores an ``int`` per entry instead of a
    bytes object, and the direct walk computes sizes arithmetically
    without ever materializing an encoding.

    Soundness rides on the same invariants as :class:`EncodeMemo` (see
    its docstring) plus one more: every ``_size`` branch below is the
    closed form of the matching ``_encode`` branch's length.  Sorting in
    the set/dict encodings reorders bytes but never changes the total,
    so sizes compose by plain summation.  ``tests/test_encoding.py``
    pins ``size == len(encode)`` across the payload grammar.
    """

    __slots__ = ("_by_id", "_leaves", "_structs")

    def __init__(self) -> None:
        #: id(obj) -> (pinned obj, size, canonical id)
        self._by_id: dict[int, tuple[object, int, int]] = {}
        #: (type, value) -> (pinned obj, size, canonical id)
        self._leaves: dict[tuple, tuple[object, int, int]] = {}
        #: (child canonical ids...) -> (pinned obj, size, canonical id)
        self._structs: dict[tuple, tuple[object, int, int]] = {}

    def entry_counts(self) -> dict:
        """Sizes of the three memo tables (for cache introspection)."""
        return {
            "identity_entries": len(self._by_id),
            "leaf_entries": len(self._leaves),
            "struct_entries": len(self._structs),
        }

    def size(self, value: object) -> int:
        """Canonical-encoding size of ``value``, memoized structurally."""
        entry = self._by_id.get(id(value))
        if entry is not None:
            return entry[1]
        return self._cons(value)[0]

    def _cons(self, value: object) -> "tuple[int, int | None]":
        """Canonicalize ``value``; returns ``(size, canonical id)``.

        Same first-seen pinning discipline as :meth:`EncodeMemo._cons`:
        structural duplicates resolve without being registered, so the
        identity map is bounded by distinct structures.  Unstorable
        values return a ``None`` id.
        """
        cls = value.__class__
        if cls is tuple:
            by_id = self._by_id
            child_ids = []
            total = 5
            for item in value:
                entry = by_id.get(id(item))
                if entry is not None:
                    child_ids.append(entry[2])
                    total += entry[1]
                    continue
                size, canonical = self._cons(item)
                if canonical is None:  # unstorable child: no consing here
                    return _size(value, self), None
                child_ids.append(canonical)
                total += size
            skey = tuple(child_ids)
            hit = self._structs.get(skey)
            if hit is not None:
                return hit[1], hit[2]
            entry = (value, total, id(value))
            self._structs[skey] = entry
            by_id[id(value)] = entry
            return total, entry[2]
        if cls in _EXACT_LEAF_TYPES:
            lkey = (cls, value)
            hit = self._leaves.get(lkey)
            if hit is not None:
                return hit[1], hit[2]
            size = _size(value, self)
            entry = (value, size, id(value))
            self._leaves[lkey] = entry
            self._by_id[id(value)] = entry
            return size, entry[2]
        if cls is frozenset or cls is _signature_class():
            size = _size(value, self)
            self._by_id[id(value)] = (value, size, id(value))
            return size, id(value)
        # Mutable or foreign: never stored.
        return _size(value, self), None


def _sized(value: object, memo: "SizeMemo | None") -> int:
    if memo is not None:
        entry = memo._by_id.get(id(value))
        if entry is not None:
            return entry[1]
        return memo._cons(value)[0]
    return _size(value, None)


def _size(value: object, memo: "SizeMemo | None") -> int:
    """Closed-form length of ``_encode(value, ...)`` — branch for branch."""
    if value is None or value is True or value is False:
        return 1
    if isinstance(value, int):
        return 5 + len(str(value))
    if isinstance(value, float):
        return 9
    if isinstance(value, str):
        return 5 + len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return 5 + len(value)
    if isinstance(value, PartyId):
        return 5 + len(str(value))
    if isinstance(value, (tuple, list)):
        return 5 + sum(_sized(item, memo) for item in value)
    if isinstance(value, (frozenset, set)):
        # The encoding sorts the items' bytes; sorting permutes, never
        # grows, so the total is order-independent.
        return 5 + sum(_sized(item, memo) for item in value)
    if isinstance(value, dict):
        return 5 + sum(
            _sized(key, memo) + _sized(val, memo) for key, val in value.items()
        )
    signer = getattr(value, "signer", None)
    tag = getattr(value, "tag", None)
    if isinstance(signer, PartyId) and isinstance(tag, bytes):
        return 1 + _sized(signer, memo) + 4 + len(tag)
    raise ProtocolError(
        f"cannot canonically encode value of type {type(value).__name__}: {value!r}"
    )


def encoded_size(value: object, memo: "EncodeMemo | SizeMemo | None" = None) -> int:
    """Size in bytes of the canonical encoding (message-size accounting).

    Without a memo (or with a :class:`SizeMemo`) this is a size-only
    walk that never builds canonical bytes; passing an
    :class:`EncodeMemo` still measures through the encoder so callers
    that already hold one keep their byte sharing.
    """
    if memo is None:
        return _size(value, None)
    if isinstance(memo, SizeMemo):
        return _sized(value, memo)
    return len(encode(value, memo))


# -- compact fixed-width ranking encoding --------------------------------------
#
# The canonical encoder above is general and injective, but for the one
# payload shape sweeps churn through by the hundred thousand — a
# preference ranking, i.e. a permutation row — its tagged tree costs a
# ~14-byte node per entry plus memo traffic per node.  The fixed-width
# codec below is the kernel-side alternative for ranking *fingerprints*
# (dedup keys, bench checksums, figure caches): one uint16 per entry,
# no per-node work, still injective on its domain.  It is NOT a wire
# format replacement: protocol messages keep the canonical encoding
# (and its signature sharing) unchanged.

_RANKING_MAGIC = b"R1"
_PROFILE_MAGIC = b"P1"


def pack_ranking(side: str, indexes) -> bytes:
    """Fixed-width encoding of one preference row of opposite-side indexes.

    Layout: ``b"R1"`` + side byte + uint16 length + uint16 per index
    (big-endian).  Injective for ``k <= 65535`` — far beyond any grid
    this package runs.
    """
    if side not in ("L", "R"):
        raise ProtocolError(f"ranking side must be 'L' or 'R', got {side!r}")
    k = len(indexes)
    if k > 0xFFFF:
        raise ProtocolError(f"ranking too long for fixed-width encoding: {k}")
    return _RANKING_MAGIC + side.encode("ascii") + struct.pack(f">H{k}H", k, *indexes)


def unpack_ranking(blob: bytes) -> tuple[str, tuple[int, ...]]:
    """Inverse of :func:`pack_ranking`."""
    if blob[:2] != _RANKING_MAGIC or len(blob) < 5:
        raise ProtocolError("not a packed ranking")
    side = chr(blob[2])
    (k,) = struct.unpack_from(">H", blob, 3)
    if len(blob) != 5 + 2 * k:
        raise ProtocolError(f"packed ranking length mismatch for k={k}")
    return side, struct.unpack_from(f">{k}H", blob, 5)


def pack_profile(tables) -> bytes:
    """Fixed-width encoding of a whole lowered profile.

    ``tables`` is a :class:`repro.matching.kernel.RankTables` (duck-
    typed: ``k``, ``left_pref``, ``right_pref``).  Both preference
    matrices row-major as uint16 — ``4*k^2 + 4`` bytes total, built in
    two ``struct.pack`` calls.  The rank matrices are derived data
    (inverse permutations), so packing the preference matrices alone is
    already injective per ``k``.
    """
    k = tables.k
    if k > 0xFFFF:
        raise ProtocolError(f"profile too large for fixed-width encoding: k={k}")
    cells = k * k
    return (
        _PROFILE_MAGIC
        + struct.pack(">H", k)
        + struct.pack(f">{cells}H", *tables.left_pref)
        + struct.pack(f">{cells}H", *tables.right_pref)
    )
