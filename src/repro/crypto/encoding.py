"""Canonical, deterministic payload encoding.

Signatures must be computed over *bytes*, and two honest parties must
encode the same logical payload to the same bytes.  This module defines
a small structural encoding for the value types protocols actually
send: ``None``, ``bool``, ``int``, ``str``, ``bytes``, ``float``,
:class:`~repro.ids.PartyId`, tuples/lists, frozensets/sets (encoded in
sorted order), dicts (sorted by encoded key), and
:class:`~repro.crypto.signatures.Signature` (by duck-typed fields, to
avoid a circular import).

The encoding is type-tagged and length-prefixed, so it is injective:
distinct payloads never collide.  ``encoded_size`` doubles as the byte
accounting used by the message-complexity benchmarks.
"""

from __future__ import annotations

import struct

from repro.errors import ProtocolError
from repro.ids import PartyId

__all__ = ["encode", "encoded_size"]

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_PARTY = b"P"
_TAG_TUPLE = b"L"
_TAG_SET = b"Z"
_TAG_DICT = b"M"
_TAG_SIG = b"G"


def _length_prefixed(raw: bytes) -> bytes:
    return struct.pack(">I", len(raw)) + raw


def encode(value: object) -> bytes:
    """Canonically encode ``value``; raises ``ProtocolError`` on foreign types."""
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        raw = str(value).encode("ascii")
        return _TAG_INT + _length_prefixed(raw)
    if isinstance(value, float):
        return _TAG_FLOAT + struct.pack(">d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return _TAG_STR + _length_prefixed(raw)
    if isinstance(value, bytes):
        return _TAG_BYTES + _length_prefixed(value)
    if isinstance(value, PartyId):
        raw = str(value).encode("ascii")
        return _TAG_PARTY + _length_prefixed(raw)
    if isinstance(value, (tuple, list)):
        body = b"".join(encode(item) for item in value)
        return _TAG_TUPLE + struct.pack(">I", len(value)) + body
    if isinstance(value, (frozenset, set)):
        encoded_items = sorted(encode(item) for item in value)
        body = b"".join(encoded_items)
        return _TAG_SET + struct.pack(">I", len(encoded_items)) + body
    if isinstance(value, dict):
        encoded_entries = sorted(
            (encode(key), encode(val)) for key, val in value.items()
        )
        body = b"".join(key + val for key, val in encoded_entries)
        return _TAG_DICT + struct.pack(">I", len(encoded_entries)) + body
    # Signature is encoded structurally (duck-typed to avoid an import cycle).
    signer = getattr(value, "signer", None)
    tag = getattr(value, "tag", None)
    if isinstance(signer, PartyId) and isinstance(tag, bytes):
        return _TAG_SIG + encode(signer) + _length_prefixed(tag)
    raise ProtocolError(
        f"cannot canonically encode value of type {type(value).__name__}: {value!r}"
    )


def encoded_size(value: object) -> int:
    """Size in bytes of the canonical encoding (message-size accounting)."""
    return len(encode(value))
