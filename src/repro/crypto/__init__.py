"""Cryptographic substrate: canonical encoding and digital signatures.

The paper's authenticated setting assumes a PKI and unforgeable
signatures.  We realize this with HMAC-SHA256 over a canonical payload
encoding, with per-party secret keys held by a simulator-owned
:class:`~repro.crypto.signatures.KeyRing`.  Parties only ever receive a
:class:`~repro.crypto.signatures.SigningHandle` that signs as
themselves, so byzantine parties can sign arbitrary messages in their
own name but cannot forge honest parties' signatures — exactly the
idealization the paper works with.
"""

from repro.crypto.encoding import encode, encoded_size
from repro.crypto.signatures import KeyRing, Signature, SigningHandle

__all__ = ["encode", "encoded_size", "KeyRing", "Signature", "SigningHandle"]
