"""Digital signatures with simulator-enforced unforgeability.

The paper assumes "for simplicity of presentation ... that signatures
are unforgeable".  We realize that assumption with HMAC-SHA256:

* the :class:`KeyRing` generates one secret key per party and never
  exposes it;
* each party receives a :class:`SigningHandle` bound to its own
  identity — the only object able to produce its signatures;
* anyone can verify via the key ring (modelling the PKI).

A byzantine party holds a perfectly good handle for *itself* and can
sign any message it likes in its own name, but it can neither read nor
use another party's key — forging is impossible by construction, not
merely computationally hard.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.encoding import encode
from repro.errors import SignatureError
from repro.ids import PartyId

__all__ = ["Signature", "KeyRing", "SigningHandle"]


@dataclass(frozen=True)
class Signature:
    """A signature: the claimed signer and an HMAC tag over the payload."""

    signer: PartyId
    tag: bytes

    def __repr__(self) -> str:
        return f"Signature({self.signer}, {self.tag.hex()[:12]}...)"


class KeyRing:
    """Holds every party's secret key; models the PKI.

    The simulator owns the ring.  Parties interact with it only through
    :meth:`handle_for` (signing as themselves) and :meth:`verify`
    (public verification).
    """

    def __init__(self, parties, *, seed: int = 0) -> None:
        self._keys: dict[PartyId, bytes] = {}
        for party in sorted(parties):
            material = f"repro-key/{seed}/{party}".encode("utf-8")
            self._keys[party] = hashlib.sha256(material).digest()

    @property
    def parties(self) -> tuple[PartyId, ...]:
        """All parties with registered keys."""
        return tuple(sorted(self._keys))

    def _sign_as(
        self, signer: PartyId, payload: object, *, encoded: bytes | None = None
    ) -> Signature:
        try:
            key = self._keys[signer]
        except KeyError as exc:
            raise SignatureError(f"no key registered for {signer}") from exc
        tag = hmac.new(
            key, encoded if encoded is not None else encode(payload), hashlib.sha256
        ).digest()
        return Signature(signer=signer, tag=tag)

    def handle_for(self, party: PartyId) -> "SigningHandle":
        """The signing handle for ``party`` (given to that party only)."""
        if party not in self._keys:
            raise SignatureError(f"no key registered for {party}")
        return SigningHandle(self, party)

    def verify(
        self,
        signer: PartyId,
        payload: object,
        signature: object,
        *,
        encoded: bytes | None = None,
    ) -> bool:
        """Public verification; tolerant of garbage ``signature`` objects.

        ``encoded`` optionally supplies the payload's canonical bytes
        (callers holding an encode memo skip the re-encoding).
        """
        if not isinstance(signature, Signature):
            return False
        if signature.signer != signer:
            return False
        key = self._keys.get(signer)
        if key is None:
            return False
        expected = hmac.new(
            key, encoded if encoded is not None else encode(payload), hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, signature.tag)


class SigningHandle:
    """A capability to sign as one fixed party.

    This is what a party's process actually receives: it cannot be used
    to sign as anyone else, which is what makes byzantine forgery
    impossible inside the simulation.
    """

    def __init__(self, ring: KeyRing, owner: PartyId) -> None:
        self._ring = ring
        self.owner = owner

    def sign(self, payload: object) -> Signature:
        """Sign ``payload`` as the owning party."""
        return self._ring._sign_as(self.owner, payload)

    def verify(self, signer: PartyId, payload: object, signature: object) -> bool:
        """Verify any party's signature (PKI lookup)."""
        return self._ring.verify(signer, payload, signature)
