"""Phase-king BA/BB for general (Q3) adversary structures — Lemma 4.

The paper's fully-connected unauthenticated feasibility (Theorem 2)
rests on [9, Theorem 2]: BB is solvable against any adversary structure
``Z`` in which no three admissible sets cover the party set.  The
constructive protocol is the phase-king engine with the counting
thresholds replaced by structure predicates:

* *strong quorum* for value ``v``: the non-senders form an admissible
  set (every honest party may be among the senders) — generalizes
  ``|senders| >= k - t``;
* *honest witness*: the senders do **not** form an admissible set (at
  least one is honest) — generalizes ``|senders| > t``;
* king sequence: a smallest non-admissible party set (for the paper's
  product structure with ``tL < k/3``: any ``tL + 1`` parties of ``L``),
  so at least one king phase has an honest king.

Safety of the generalized conditions is exactly the Q3 argument: if two
honest parties saw strong quorums for different values, the two
complement sets plus the real corruption set would be three admissible
sets covering everything.
"""

from __future__ import annotations

from typing import Sequence

from repro.adversary.structures import AdversaryStructure
from repro.consensus.base import validate_group
from repro.consensus.phase_king import PhaseKingEngine, _hashable
from repro.errors import ProtocolError
from repro.ids import PartyId
from repro.net.process import Envelope, Process

__all__ = ["GeneralAdversaryBA", "GeneralAdversaryBB"]


class GeneralAdversaryBA(PhaseKingEngine):
    """Byzantine Agreement under a Q3 adversary structure.

    Includes the paper's echo round (as in ``PiBA``), so the omission
    guarantees of Theorem 8 carry over: termination always, and weak
    agreement when omissions occur.
    """

    def __init__(
        self,
        group: Sequence[PartyId],
        structure: AdversaryStructure,
        value: object,
        kings: Sequence[PartyId] | None = None,
    ) -> None:
        members = validate_group(group, minimum=1)
        member_set = frozenset(members)
        self.structure = structure

        def strong_quorum(senders: frozenset) -> bool:
            return structure.permits(member_set - senders)

        def honest_witness(senders: frozenset) -> bool:
            return bool(senders) and not structure.permits(senders)

        king_sequence = tuple(kings) if kings is not None else structure.king_set()
        for king in king_sequence:
            if king not in member_set:
                raise ProtocolError(f"king {king} is not in the group")
        super().__init__(
            group=members,
            kings=king_sequence,
            value=value,
            strong_quorum=strong_quorum,
            honest_witness=honest_witness,
        )

    @property
    def output_round(self) -> int:
        """Round at which BA outputs: king schedule plus one echo round."""
        return self.decision_round + 1

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        round_now = ctx.round
        king_done = self.decision_round
        if round_now < king_done:
            super().on_round(ctx, inbox)
            return
        if round_now == king_done:
            self._absorb_king(ctx, inbox, self.phases - 1)
            self._echo_value = self.v
            for dst in self._others(ctx.me):
                ctx.send(dst, ("echo", self._echo_value))
            return
        if round_now == king_done + 1:
            counts: dict[object, set[PartyId]] = {}
            counts.setdefault(self._echo_value, set()).add(ctx.me)
            for envelope in inbox:
                payload = envelope.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "echo"
                    and envelope.src in self.group
                    and _hashable(payload[1])
                ):
                    counts.setdefault(payload[1], set()).add(envelope.src)
            member_set = frozenset(self.group)
            decided: object = None
            for value in self._ordered({v: frozenset(s) for v, s in counts.items()}):
                if self.structure.permits(member_set - frozenset(counts[value])):
                    decided = value
                    break
            ctx.output(decided)
            ctx.halt()

    def _on_decided(self, ctx, value: object) -> None:
        raise ProtocolError("GeneralAdversaryBA handles its own decision schedule")


class GeneralAdversaryBB(Process):
    """Byzantine Broadcast under a Q3 structure: sender round + BA.

    Validity: an honest sender's value reaches every honest party, all
    of whom join BA with the same input; BA validity does the rest.
    """

    def __init__(
        self,
        sender: PartyId,
        group: Sequence[PartyId],
        structure: AdversaryStructure,
        value: object = None,
        default: object = None,
        kings: Sequence[PartyId] | None = None,
    ) -> None:
        self.group = validate_group(group, minimum=1)
        if sender not in self.group:
            raise ProtocolError(f"sender {sender} is not in the group")
        self.sender = sender
        self.structure = structure
        self.value = value
        self.default = default
        self._kings = kings
        self._ba: GeneralAdversaryBA | None = None

    @property
    def output_round(self) -> int:
        """Round at which BB outputs: one sender round + the BA schedule."""
        probe = GeneralAdversaryBA(self.group, self.structure, None, kings=self._kings)
        return 1 + probe.output_round

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        round_now = ctx.round
        if round_now == 0:
            if ctx.me == self.sender:
                for dst in (p for p in self.group if p != ctx.me):
                    ctx.send(dst, ("bbin", self.value))
            return
        if round_now == 1:
            received = self.default
            if ctx.me == self.sender:
                received = self.value
            else:
                for envelope in inbox:
                    payload = envelope.payload
                    if (
                        envelope.src == self.sender
                        and isinstance(payload, tuple)
                        and len(payload) == 2
                        and payload[0] == "bbin"
                        and _hashable(payload[1])
                    ):
                        received = payload[1]
                        break
            self._ba = GeneralAdversaryBA(
                self.group, self.structure, received, kings=self._kings
            )
        if self._ba is not None and not ctx.halted:
            from repro.consensus.omission_bb import ShiftedContext

            self._ba.on_round(ShiftedContext(ctx, 1), inbox if round_now > 1 else ())
