"""Dolev-Strong authenticated Byzantine Broadcast (``t < n``).

The engine behind Theorem 5 ("bSM is solvable in a fully-connected
authenticated network"): with a PKI, the sender's value is relayed with
growing signature chains; a value is *extracted* at round ``r`` only
with ``r`` distinct valid signatures, the sender's first.  After round
``t + 1`` every honest party holds the same extracted set; a singleton
set decides that value, anything else the default.

Complexity: ``t + 2`` rounds, ``O(n^2)`` messages per broadcast with
chains up to length ``t + 1`` — measured by the C1/C2 benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.consensus.base import validate_group
from repro.errors import ProtocolError
from repro.ids import PartyId
from repro.net.process import Envelope, Process

__all__ = ["DolevStrongBB"]

_TAG = "ds"


class DolevStrongBB(Process):
    """One Dolev-Strong broadcast instance.

    Args:
        sender: the designated broadcaster.
        group: all participants (sender included).
        t: maximum number of corruptions tolerated (< len(group)).
        value: the sender's input (ignored for non-senders).
        default: output when the sender equivocates or stays silent.
    """

    def __init__(
        self,
        sender: PartyId,
        group: Sequence[PartyId],
        t: int,
        value: object = None,
        default: object = None,
    ) -> None:
        self.group = validate_group(group, minimum=2)
        if sender not in self.group:
            raise ProtocolError(f"sender {sender} is not in the group")
        if not 0 <= t < len(self.group):
            raise ProtocolError(f"Dolev-Strong needs 0 <= t < n, got t={t}, n={len(self.group)}")
        self.sender = sender
        self.t = t
        self.value = value
        self.default = default
        self._extracted: dict[object, tuple] = {}
        self._relay_queue: list[tuple[object, tuple]] = []

    def _signed_payload(self, value: object) -> tuple:
        return (_TAG, self.sender, value)

    def _others(self, me: PartyId) -> tuple[PartyId, ...]:
        return tuple(p for p in self.group if p != me)

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        round_now = ctx.round
        deadline = self.t + 1

        if round_now == 0:
            if ctx.me == self.sender:
                self._extracted[self.value] = ()
                signature = ctx.sign(self._signed_payload(self.value))
                for dst in self._others(ctx.me):
                    ctx.send(dst, (_TAG, self.value, (signature,)))
            return

        # Rounds 1 .. t+1: extract and relay.
        for envelope in inbox:
            parsed = self._parse(ctx, envelope, round_now)
            if parsed is None:
                continue
            value, chain = parsed
            if value in self._extracted:
                continue
            self._extracted[value] = chain
            if round_now <= self.t and ctx.me != self.sender:
                extended = chain + (ctx.sign(self._signed_payload(value)),)
                for dst in self._others(ctx.me):
                    ctx.send(dst, (_TAG, value, extended))

        if round_now >= deadline:
            if len(self._extracted) == 1:
                (decided,) = self._extracted
            else:
                decided = self.default
            ctx.output(decided)
            ctx.halt()

    def _parse(self, ctx, envelope: Envelope, round_now: int) -> tuple[object, tuple] | None:
        payload = envelope.payload
        if not (isinstance(payload, tuple) and len(payload) == 3 and payload[0] == _TAG):
            return None
        _, value, chain = payload
        if not isinstance(chain, tuple):
            return None
        # A chain arriving in round r must carry >= r distinct valid
        # signatures on the value, the sender's first, all from the group.
        if len(chain) < round_now:
            return None
        signers: list[PartyId] = []
        signed = self._signed_payload(value)
        for signature in chain:
            signer = getattr(signature, "signer", None)
            if signer is None or signer not in self.group or signer in signers:
                return None
            if not ctx.verify(signer, signed, signature):
                return None
            signers.append(signer)
        if not signers or signers[0] != self.sender:
            return None
        try:
            hash(value)
        except TypeError:
            return None
        return value, chain
