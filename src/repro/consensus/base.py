"""Shared definitions for the consensus protocols.

Every consensus primitive in this package (Dolev-Strong, phase king,
the omission-model BB, the general-adversary BB) is written against the
:data:`repro.runtime.Party` state-machine interface — init →
``on_round(ctx, inbox)`` → output → halt — so it runs unchanged on any
:mod:`repro.runtime` executor and over any transport.

Timing functions mirror the paper's ``Delta``-algebra: all protocols
are written for virtual delay-1 rounds, and running them over a
relayed transport (2 real rounds per virtual round) multiplies every
bound by the transport's ``delta`` — exactly the paper's
``Delta_BA(2 * Delta)`` notation.

``BOT`` is the distinguished "no value" output (the paper's ``bot``):
protocols may output it under omissions, and the weak agreement
property only constrains non-``BOT`` outputs.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ProtocolError
from repro.ids import PartyId

__all__ = [
    "BOT",
    "delta_king",
    "delta_ba",
    "delta_bb",
    "delta_dolev_strong",
    "validate_group",
]

#: The paper's ``bot``: "no consistent value obtained".
BOT = None


def delta_king(t: int) -> int:
    """Rounds until ``PiKing`` outputs: ``3 * (t + 1)`` (Theorem 11)."""
    return 3 * (t + 1)


def delta_ba(t: int) -> int:
    """Rounds until ``PiBA`` outputs: ``Delta_King + 1`` echo round (Theorem 8)."""
    return delta_king(t) + 1


def delta_bb(t: int) -> int:
    """Rounds until ``PiBB`` outputs: one sender round + ``Delta_BA`` (Theorem 9)."""
    return 1 + delta_ba(t)


def delta_dolev_strong(t: int) -> int:
    """Rounds until Dolev-Strong outputs: ``t + 2`` (send + t+1 relay rounds)."""
    return t + 2


def validate_group(group: Iterable[PartyId], minimum: int = 1) -> tuple[PartyId, ...]:
    """Normalize a participant group: sorted, distinct, non-empty."""
    members = tuple(sorted(set(group)))
    if len(members) < minimum:
        raise ProtocolError(f"protocol group needs >= {minimum} parties, got {len(members)}")
    return members
