"""``PiBB`` (Theorem 9): Byzantine Broadcast from ``PiBA``.

The paper's reduction, verbatim: the sender sends its value to all
parties; a party that receives nothing within ``Delta`` substitutes the
default value (the default preference list, in ``PiBSM``); everyone
then joins ``PiBA`` on the received value.  Under omissions the BA's
termination and weak agreement carry over, which is all ``PiBSM``
needs from its broadcasts when the right side is fully byzantine.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.consensus.base import delta_bb, validate_group
from repro.consensus.phase_king import PiBA, _hashable
from repro.errors import ProtocolError
from repro.ids import PartyId
from repro.net.process import Envelope, Process
from repro.net.shift import ShiftedContext

__all__ = ["PiBB", "ShiftedContext"]


class PiBB(Process):
    """One ``PiBB`` broadcast instance over a group with ``t < k/3``.

    Args:
        sender: the designated broadcaster.
        group: all participants.
        t: corruption bound within the group.
        value: sender input (ignored for non-senders).
        default: substituted when the sender stays silent (the paper's
            "default preference list").
        validator: optional predicate; received values failing it are
            replaced by the default before entering BA.
    """

    def __init__(
        self,
        sender: PartyId,
        group: Sequence[PartyId],
        t: int,
        value: object = None,
        default: object = None,
        validator: Callable[[object], bool] | None = None,
    ) -> None:
        self.group = validate_group(group, minimum=1)
        if sender not in self.group:
            raise ProtocolError(f"sender {sender} is not in the group")
        if t < 0 or 3 * t >= len(self.group):
            raise ProtocolError(f"PiBB needs 0 <= t < k/3, got t={t}, k={len(self.group)}")
        self.sender = sender
        self.t = t
        self.value = value
        self.default = default
        self.validator = validator
        self._ba: PiBA | None = None

    @property
    def output_round(self) -> int:
        """Round at which this instance outputs: ``delta_bb(t)``."""
        return delta_bb(self.t)

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        round_now = ctx.round
        if round_now == 0:
            if ctx.me == self.sender:
                for dst in (p for p in self.group if p != ctx.me):
                    ctx.send(dst, ("bbin", self.value))
            return
        if round_now == 1:
            received: object = None
            got = False
            if ctx.me == self.sender:
                received, got = self.value, True
            else:
                for envelope in inbox:
                    payload = envelope.payload
                    if (
                        envelope.src == self.sender
                        and isinstance(payload, tuple)
                        and len(payload) == 2
                        and payload[0] == "bbin"
                        and _hashable(payload[1])
                    ):
                        received, got = payload[1], True
                        break
            if not got:
                received = self.default
            elif self.validator is not None and not self.validator(received):
                received = self.default
            self._ba = PiBA(self.group, self.t, received)
        if self._ba is not None and not ctx.halted:
            shifted = ShiftedContext(ctx, 1)
            self._ba.on_round(shifted, inbox if round_now > 1 else ())
