"""Consensus substrates used by the paper's feasibility protocols.

* :mod:`repro.consensus.dolev_strong` — authenticated Byzantine
  Broadcast for any ``t < n`` [Dolev-Strong 83], the engine behind
  Theorem 5.
* :mod:`repro.consensus.phase_king` — the Berman-Garay-Perry king
  protocol ``PiKing`` and the paper's omission-tolerant wrapper
  ``PiBA`` (Theorem 8, Appendix A.6).
* :mod:`repro.consensus.omission_bb` — ``PiBB`` (Theorem 9), the
  one-round reduction of BB to ``PiBA``.
* :mod:`repro.consensus.general_adversary` — phase-king BA/BB
  generalized to Q3 adversary structures (Lemma 4, via the
  Fitzi-Maurer acceptance conditions).

All protocols are written against delay-1 virtual contexts and run
unchanged over the relayed transports of :mod:`repro.core.relays`.
"""

from repro.consensus.base import (
    BOT,
    delta_ba,
    delta_bb,
    delta_dolev_strong,
    delta_king,
)
from repro.consensus.dolev_strong import DolevStrongBB
from repro.consensus.general_adversary import GeneralAdversaryBA, GeneralAdversaryBB
from repro.consensus.omission_bb import PiBB
from repro.consensus.phase_king import PiBA, PiKing

__all__ = [
    "BOT",
    "delta_king",
    "delta_ba",
    "delta_bb",
    "delta_dolev_strong",
    "DolevStrongBB",
    "PiKing",
    "PiBA",
    "PiBB",
    "GeneralAdversaryBA",
    "GeneralAdversaryBB",
]
