"""``PiKing`` and ``PiBA`` (paper Appendix A.6, Theorems 8 and 11).

``PiKing`` is the Berman-Garay-Perry king protocol exactly as the
paper presents it: ``t + 1`` phases of three rounds (value / propose /
king), deciding after ``3 (t + 1)`` rounds.  ``PiBA`` adds the paper's
one echo round on top: a party outputs ``z`` only after seeing the same
``z`` from ``k - t`` parties, and outputs ``BOT`` otherwise — this is
what turns plain BA into BA-with-weak-agreement-under-omissions
(Theorem 8), the property ``PiBSM`` needs when the whole right side is
byzantine.

The engine is written with *acceptance predicates* instead of literal
counts so the general-adversary variant (Lemma 4) reuses it with
structure-based conditions; the threshold predicates here are verbatim
translations of the pseudocode's ``k - tL`` / ``> tL`` conditions.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.consensus.base import BOT, delta_ba, delta_king, validate_group
from repro.errors import ProtocolError
from repro.ids import PartyId
from repro.net.process import Envelope, Process

__all__ = ["PhaseKingEngine", "PiKing", "PiBA"]


def _hashable(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


class PhaseKingEngine(Process):
    """Shared state machine for threshold and general-adversary phase king.

    Subclasses (or callers) provide:

    * ``kings`` — the king sequence; one phase per king; at least one
      king must stay honest for agreement;
    * ``strong_quorum(senders)`` — "every honest party may be among the
      senders" (threshold form: ``|senders| >= k - t``);
    * ``honest_witness(senders)`` — "at least one sender is honest"
      (threshold form: ``|senders| > t``).
    """

    def __init__(
        self,
        group: Sequence[PartyId],
        kings: Sequence[PartyId],
        value: object,
        strong_quorum: Callable[[frozenset], bool],
        honest_witness: Callable[[frozenset], bool],
    ) -> None:
        self.group = validate_group(group, minimum=1)
        self.kings = tuple(kings)
        if not self.kings:
            raise ProtocolError("phase king needs a non-empty king sequence")
        for king in self.kings:
            if king not in self.group:
                raise ProtocolError(f"king {king} is not in the group")
        self._strong_quorum = strong_quorum
        self._honest_witness = honest_witness
        self.v = value
        self._weak_support = False
        self._king_candidate: object = BOT
        self._king_candidate_seen = False

    # -- schedule ------------------------------------------------------------------

    @property
    def phases(self) -> int:
        return len(self.kings)

    @property
    def decision_round(self) -> int:
        """The virtual round at which the engine decides: ``3 * phases``."""
        return 3 * self.phases

    def _others(self, me: PartyId) -> tuple[PartyId, ...]:
        return tuple(p for p in self.group if p != me)

    # -- the rounds -----------------------------------------------------------------

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        round_now = ctx.round
        if round_now > self.decision_round:
            return
        phase, step = divmod(round_now, 3)

        if step == 0:
            # Close the previous phase: adopt the king's value when this
            # party saw no strong proposal support (pseudocode lines 15-16).
            if phase > 0:
                self._absorb_king(ctx, inbox, phase - 1)
            if round_now == self.decision_round:
                self._on_decided(ctx, self.v)
                return
            # Pseudocode round 1: send (value, v) to all.  A party counts
            # its own value toward quorums (it "sends to itself").
            self._sent_value = self.v
            for dst in self._others(ctx.me):
                ctx.send(dst, ("val", phase, self.v))
            return

        if step == 1:
            # Pseudocode round 2: propose any value with a strong quorum.
            votes = self._tally(inbox, "val", phase, own=(ctx.me, self._sent_value))
            self._sent_proposal = None
            for candidate in self._ordered(votes):
                if self._strong_quorum(votes[candidate]):
                    self._sent_proposal = candidate
                    for dst in self._others(ctx.me):
                        ctx.send(dst, ("prop", phase, candidate))
                    break
            return

        # step == 2 — pseudocode round 3: absorb proposals, king speaks.
        own_proposal = None
        if getattr(self, "_sent_proposal", None) is not None:
            own_proposal = (ctx.me, self._sent_proposal)
        proposals = self._tally(inbox, "prop", phase, own=own_proposal)
        for candidate in self._ordered(proposals):
            if self._honest_witness(proposals[candidate]):
                self.v = candidate
                break
        self._weak_support = not any(
            self._strong_quorum(senders) for senders in proposals.values()
        )
        king = self.kings[phase]
        self._king_candidate_seen = False
        self._king_candidate = BOT
        if ctx.me == king:
            for dst in self._others(ctx.me):
                ctx.send(dst, ("king", phase, self.v))
            # The king "receives" its own broadcast.
            self._king_candidate = self.v
            self._king_candidate_seen = True

    def _absorb_king(self, ctx, inbox: Sequence[Envelope], phase: int) -> None:
        king = self.kings[phase]
        if not self._king_candidate_seen:
            for envelope in inbox:
                payload = envelope.payload
                if (
                    envelope.src == king
                    and isinstance(payload, tuple)
                    and len(payload) == 3
                    and payload[0] == "king"
                    and payload[1] == phase
                    and _hashable(payload[2])
                ):
                    self._king_candidate = payload[2]
                    self._king_candidate_seen = True
                    break
        if self._weak_support and self._king_candidate_seen:
            self.v = self._king_candidate

    def _tally(
        self,
        inbox: Sequence[Envelope],
        tag: str,
        phase: int,
        own: tuple[PartyId, object] | None = None,
    ) -> dict[object, frozenset]:
        votes: dict[object, set[PartyId]] = {}
        if own is not None and _hashable(own[1]):
            votes.setdefault(own[1], set()).add(own[0])
        for envelope in inbox:
            payload = envelope.payload
            if not (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == tag
                and payload[1] == phase
            ):
                continue
            if envelope.src not in self.group or not _hashable(payload[2]):
                continue
            votes.setdefault(payload[2], set()).add(envelope.src)
        return {value: frozenset(senders) for value, senders in votes.items()}

    def _ordered(self, votes: dict[object, frozenset]) -> list:
        """Candidates by (support size desc, stable repr) — deterministic."""
        return sorted(votes, key=lambda value: (-len(votes[value]), repr(value)))

    def _on_decided(self, ctx, value: object) -> None:
        """Terminal hook; plain King outputs and halts."""
        ctx.output(value)
        ctx.halt()


class PiKing(PhaseKingEngine):
    """The paper's ``PiKing``: threshold phase king for ``t < k/3``.

    Decides within ``3 (t + 1)`` rounds (Theorem 11); under omissions it
    still terminates on schedule (Remark 1) but may decide inconsistently —
    use :class:`PiBA` for the weak-agreement guarantee.
    """

    def __init__(
        self,
        group: Sequence[PartyId],
        t: int,
        value: object,
        kings: Sequence[PartyId] | None = None,
    ) -> None:
        members = validate_group(group, minimum=1)
        if t < 0 or 3 * t >= len(members):
            raise ProtocolError(
                f"PiKing needs 0 <= t < k/3, got t={t} for k={len(members)}"
            )
        size = len(members)
        super().__init__(
            group=members,
            kings=tuple(kings) if kings is not None else members[: t + 1],
            value=value,
            strong_quorum=lambda senders: len(senders) >= size - t,
            honest_witness=lambda senders: len(senders) > t,
        )
        self.t = t


class PiBA(PiKing):
    """``PiBA`` (Theorem 8): ``PiKing`` plus one echo round.

    After King decides ``y``, everyone sends ``y``; a party outputs
    ``z`` only on receiving the same ``z`` from ``k - t`` parties
    (counting itself), and ``BOT`` otherwise.  Under omissions this
    yields termination plus weak agreement: two honest non-``BOT``
    outputs are equal.
    """

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        round_now = ctx.round
        king_done = self.decision_round
        if round_now < king_done:
            super().on_round(ctx, inbox)
            return
        if round_now == king_done:
            # Finish King (absorb the final king message), then echo y.
            phase = self.phases - 1
            self._absorb_king(ctx, inbox, phase)
            self._echo_value = self.v
            for dst in self._others(ctx.me):
                ctx.send(dst, ("echo", self._echo_value))
            return
        if round_now == king_done + 1:
            counts: dict[object, set[PartyId]] = {}
            counts.setdefault(self._echo_value, set()).add(ctx.me)
            for envelope in inbox:
                payload = envelope.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "echo"
                    and envelope.src in self.group
                    and _hashable(payload[1])
                ):
                    counts.setdefault(payload[1], set()).add(envelope.src)
            threshold = len(self.group) - self.t
            decided: object = BOT
            for value in self._ordered({v: frozenset(s) for v, s in counts.items()}):
                if len(counts[value]) >= threshold:
                    decided = value
                    break
            ctx.output(decided)
            ctx.halt()

    def _on_decided(self, ctx, value: object) -> None:
        # Never reached: PiBA intercepts the decision round above.
        raise ProtocolError("PiBA handles its own decision schedule")
