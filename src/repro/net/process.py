"""The process model: what a party's protocol code sees.

A party is a :class:`Process`: every round the simulator calls
``on_round(ctx, inbox)`` with the messages delivered this round (those
sent in the previous round).  The :class:`Context` is the party's whole
world: identity, current round, neighbors, sending, signing, and
declaring an output.

Outputs are write-once — the paper's parties "decide" exactly once —
and ``halt()`` tells the simulator the party is done (a halted party
neither sends nor receives).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ProtocolError
from repro.ids import PartyId
from repro.net.topology import Topology

__all__ = ["Envelope", "Context", "Process", "NullProcess"]

#: Sentinel distinguishing "no output yet" from an output of ``None``
#: (matching *nobody* is a legitimate bSM output).
_NO_OUTPUT = object()


@dataclass(frozen=True, slots=True)
class Envelope:
    """One delivered message: sender, recipient, send round, payload."""

    src: PartyId
    dst: PartyId
    sent_round: int
    payload: object

    def __repr__(self) -> str:
        return f"Envelope({self.src}->{self.dst} @r{self.sent_round}: {self.payload!r})"


class Context:
    """Per-party interface to the synchronous network.

    Created by the simulator; the same instance is reused across rounds
    (``round`` advances).  Protocol code must only use the public
    methods below.
    """

    def __init__(self, me: PartyId, topology: Topology, signer=None, encode_memo=None) -> None:
        self.me = me
        self.round = 0
        self._topology = topology
        self._signer = signer
        #: Optional shared canonical-encoding memo (set by the batched
        #: runtime); link layers may consult it for payload hashing.
        self._encode_memo = encode_memo
        self._outbox: list[tuple[PartyId, object]] = []
        self._output: object = _NO_OUTPUT
        self._halted = False
        # Both views come from the topology's per-process adjacency
        # cache; membership in the neighbor set is equivalent to a
        # passing check_edge for this party — the O(1) fast path for
        # send().
        self._neighbors = topology.neighbors(me)
        self._neighbor_set = topology.neighbor_set(me)

    # -- network ---------------------------------------------------------------

    @property
    def k(self) -> int:
        """Side size of the network."""
        return self._topology.k

    @property
    def neighbors(self) -> tuple[PartyId, ...]:
        """Parties this one shares a channel with."""
        return self._neighbors

    def send(self, dst: PartyId, payload: object) -> None:
        """Send ``payload`` to ``dst``; delivered next round.

        Raises :class:`~repro.errors.TopologyError` when no channel
        exists — honest code must respect the topology, and the
        simulator enforces the same restriction on the adversary.
        """
        if dst not in self._neighbor_set:
            # Not a channel: let check_edge raise its precise error.
            self._topology.check_edge(self.me, dst)
        self._outbox.append((dst, payload))

    def send_many(self, dsts: Iterable[PartyId], payload: object) -> None:
        """Send the same payload to several parties."""
        for dst in dsts:
            self.send(dst, payload)

    def broadcast(self, payload: object) -> None:
        """Send ``payload`` to every neighbor."""
        self.send_many(self._neighbors, payload)

    # -- signatures --------------------------------------------------------------

    @property
    def authenticated(self) -> bool:
        """True when the run provides signatures (a PKI is set up)."""
        return self._signer is not None

    def sign(self, payload: object):
        """Sign ``payload`` as this party (authenticated settings only)."""
        if self._signer is None:
            raise ProtocolError(f"{self.me}: signing requested in an unauthenticated run")
        return self._signer.sign(payload)

    def verify(self, signer: PartyId, payload: object, signature: object) -> bool:
        """Verify a signature against the PKI."""
        if self._signer is None:
            raise ProtocolError(f"{self.me}: verification requested in an unauthenticated run")
        return self._signer.verify(signer, payload, signature)

    # -- decisions ---------------------------------------------------------------

    def output(self, value: object) -> None:
        """Declare this party's (write-once) output."""
        if self._output is not _NO_OUTPUT:
            raise ProtocolError(f"{self.me}: output declared twice")
        self._output = value

    @property
    def has_output(self) -> bool:
        """True once :meth:`output` has been called."""
        return self._output is not _NO_OUTPUT

    @property
    def current_output(self) -> object:
        """The declared output (raises before any declaration)."""
        if self._output is not _NO_OUTPUT:
            return self._output
        raise ProtocolError(f"{self.me}: no output declared yet")

    def halt(self) -> None:
        """Stop participating; the simulator will not call this party again."""
        self._halted = True

    @property
    def halted(self) -> bool:
        """True once :meth:`halt` has been called."""
        return self._halted

    # -- simulator side (internal) -------------------------------------------------

    def _drain_outbox(self) -> list[tuple[PartyId, object]]:
        sends, self._outbox = self._outbox, []
        return sends


class Process(ABC):
    """A party's protocol code.

    ``on_round`` is called once per round, starting at round 0 with an
    empty inbox, until the process halts or the simulator's round limit
    is reached.
    """

    @abstractmethod
    def on_round(self, ctx: Context, inbox: Sequence[Envelope]) -> None:
        """Handle this round's deliveries and queue this round's sends."""


class NullProcess(Process):
    """A process that outputs ``None`` immediately and halts (a no-op party)."""

    def on_round(self, ctx: Context, inbox: Sequence[Envelope]) -> None:
        if not ctx.has_output:
            ctx.output(None)
        ctx.halt()
