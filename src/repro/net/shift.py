"""Clock-shift adapters.

Protocols in this library do explicit round arithmetic starting at
round 0.  When a sub-protocol joins late (e.g. the ``PiBA`` invocations
inside ``PiBSM`` start one virtual round after the ``PiBB`` ones —
"Wait Delta time to receive preference lists"), wrapping it in
:class:`ShiftedProcess` lets it keep its own arithmetic.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.net.process import Envelope, Process

__all__ = ["ShiftedContext", "ShiftedProcess", "LazyShiftedProcess"]


class ShiftedContext:
    """A context whose clock reads ``shift`` rounds earlier than the real one."""

    def __init__(self, real, shift: int) -> None:
        self._real = real
        self._shift = shift

    @property
    def round(self) -> int:
        return self._real.round - self._shift

    def __getattr__(self, name: str):
        return getattr(self._real, name)


class ShiftedProcess(Process):
    """Runs ``inner`` with its clock shifted back by ``shift`` rounds.

    Rounds before ``shift`` are silently skipped.
    """

    def __init__(self, inner: Process, shift: int) -> None:
        self.inner = inner
        self.shift = shift

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        if ctx.round < self.shift:
            return
        self.inner.on_round(ShiftedContext(ctx, self.shift), inbox)


class LazyShiftedProcess(Process):
    """Like :class:`ShiftedProcess`, but the inner process is built on demand.

    The factory runs at the first shifted round, so it can close over
    state that only becomes available mid-protocol (e.g. preference
    lists received one round earlier).
    """

    def __init__(self, factory: Callable[[], Process], shift: int) -> None:
        self.factory = factory
        self.shift = shift
        self.inner: Process | None = None

    def on_round(self, ctx, inbox: Sequence[Envelope]) -> None:
        if ctx.round < self.shift:
            return
        if self.inner is None:
            self.inner = self.factory()
        self.inner.on_round(ShiftedContext(ctx, self.shift), inbox)
