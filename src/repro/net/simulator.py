"""The synchronous round engine — now a shim over :mod:`repro.runtime`.

The engine that used to live here is the kernel of the runtime layer:
:class:`repro.runtime.kernel.RoundEngine` implements the paper's
communication model (lock-step rounds, delivery exactly one round after
sending, topology-enforced channels, rushing adversary) plus the
kernel-level hooks every runtime shares — link faults, structured
tracing, and execution caches.  See that module for the full model
documentation.

:class:`SyncNetwork` remains the stable constructor-compatible entry
point for direct, single-run use (tests, examples, hand-wired
experiments): build one with a topology, processes, and an optional
adversary, call :meth:`~repro.runtime.kernel.RoundEngine.run`, get a
:class:`~repro.runtime.kernel.RunResult`.  Batch and asyncio execution
live in :mod:`repro.runtime`; ``AsyncNetwork`` in
:mod:`repro.net.async_runtime` extends this class with asyncio
scheduling.
"""

from __future__ import annotations

from repro.runtime.kernel import (
    DEFAULT_MAX_ROUNDS,
    AdversaryWorld,
    RoundEngine,
    RunResult,
)

__all__ = ["AdversaryWorld", "RunResult", "SyncNetwork", "DEFAULT_MAX_ROUNDS"]


class SyncNetwork(RoundEngine):
    """One synchronous run: topology + processes + (optional) adversary.

    A thin, fully backward-compatible shim over the runtime kernel —
    identical constructor, identical semantics, identical results.
    """
