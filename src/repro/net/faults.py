"""Fault injection: omissions as a first-class testing tool.

The paper's Appendix A.6 analyzes protocols in "a fully-connected
synchronous network with omissions": a message either arrives within
``Delta`` or never.  The primitive is the :data:`DropRule` — a pure
predicate ``drop(src, dst, sent_round) -> bool`` — consumed in two
places:

* the **runtime kernel** (:mod:`repro.runtime.kernel`): every runtime
  accepts a ``drop_rule`` that filters the channel itself, so omission
  behavior can be injected into any end-to-end run (declaratively, via
  ``LinkSpec`` on an experiment ``AdversarySpec``);
* :class:`LossyLink`: a direct link-layer transport whose deliveries
  are filtered at the receiving link, for protocols hosted over
  :mod:`repro.net.transports`.

The canned rules below are deterministic or seeded, so omission
guarantees (Theorems 8/9: termination + weak agreement) can be tested
against arbitrary, reproducible loss patterns.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro.ids import PartyId
from repro.net.process import Envelope
from repro.net.transports import DirectLink

__all__ = [
    "DropRule",
    "LossyLink",
    "random_drop",
    "partition_drop",
    "after_round_drop",
    "compose_drop",
]

#: ``drop(src, dst, sent_round) -> bool`` — True suppresses the delivery.
DropRule = Callable[[PartyId, PartyId, int], bool]


class LossyLink(DirectLink):
    """A direct link that drops messages according to a rule.

    Messages are dropped at the *receiving* link, modelling an
    adversary that controls delivery; the sender cannot tell.
    """

    def __init__(self, me: PartyId, group: Iterable[PartyId], drop: DropRule) -> None:
        super().__init__(me, group)
        self._drop = drop
        self.dropped = 0

    def ingest(self, ctx, inbox):
        kept = []
        for envelope in inbox:
            if self._drop(envelope.src, envelope.dst, envelope.sent_round):
                self.dropped += 1
            else:
                kept.append(envelope)
        return super().ingest(ctx, kept)


def random_drop(probability: float, seed: int = 0) -> DropRule:
    """Drop each message independently with the given probability (seeded).

    The rule is deterministic per ``(src, dst, round)`` so all links in
    a run observing the same triple agree — loss looks like a property
    of the channel, not of the observer.
    """

    def rule(src: PartyId, dst: PartyId, sent_round: int) -> bool:
        rng = random.Random((seed, str(src), str(dst), sent_round).__repr__())
        return rng.random() < probability

    return rule


def partition_drop(side_a: Iterable[PartyId], side_b: Iterable[PartyId]) -> DropRule:
    """Drop everything crossing between two party groups (a partition)."""
    group_a = frozenset(side_a)
    group_b = frozenset(side_b)

    def rule(src: PartyId, dst: PartyId, sent_round: int) -> bool:
        return (src in group_a and dst in group_b) or (src in group_b and dst in group_a)

    return rule


def after_round_drop(cutoff: int) -> DropRule:
    """Deliver normally until ``cutoff``; drop everything sent later."""

    def rule(src: PartyId, dst: PartyId, sent_round: int) -> bool:
        return sent_round >= cutoff

    return rule


def compose_drop(*rules: DropRule) -> DropRule:
    """A rule dropping whatever *any* of ``rules`` drops (union of faults)."""

    def rule(src: PartyId, dst: PartyId, sent_round: int) -> bool:
        return any(r(src, dst, sent_round) for r in rules)

    return rule
