"""Synchronous message-passing network substrate.

A deterministic, round-based simulator of the paper's model: ``n = 2k``
parties with synchronized clocks, bidirectional authenticated channels
along a topology (fully-connected / one-sided / bipartite, Fig. 1), and
every message sent in round ``r`` delivered in round ``r + 1`` (one
round = one ``Delta``).  The adversary is *rushing*: corrupted parties
observe the honest messages addressed to them in the current round
before choosing their own.
"""

from repro.net.faults import (
    DropRule,
    after_round_drop,
    compose_drop,
    partition_drop,
    random_drop,
)
from repro.net.process import Context, Envelope, Process
from repro.net.simulator import RunResult, SyncNetwork
from repro.net.topology import (
    Bipartite,
    FullyConnected,
    OneSided,
    Topology,
    topology_by_name,
)

__all__ = [
    "Topology",
    "FullyConnected",
    "OneSided",
    "Bipartite",
    "topology_by_name",
    "Process",
    "Context",
    "Envelope",
    "SyncNetwork",
    "RunResult",
    "DropRule",
    "random_drop",
    "partition_drop",
    "after_round_drop",
    "compose_drop",
]
