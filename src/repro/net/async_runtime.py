"""Asyncio execution of the synchronous model.

The runtime kernel (:mod:`repro.runtime.kernel`) steps parties
sequentially.  :class:`AsyncNetwork` runs the *same* kernel on asyncio:
within each round every honest party executes as its own task, with an
optional seeded jitter (awaited ``asyncio.sleep``) emulating real
in-round scheduling noise.  This class is the engine behind
:class:`repro.runtime.EventRuntime`, which adds plan-level plumbing
(link faults, tracing, optional transport hosting).

Crucially, the outcome is **identical** to the sequential engine: a
synchronous protocol may not depend on intra-round scheduling, and the
engine enforces that by draining outboxes in canonical party order
after the round's tasks complete.  ``tests/test_async_runtime.py``
checks bit-for-bit equality of outputs, traces and statistics between
the two runtimes across settings and adversaries — which is itself a
meaningful validation that the protocols are genuinely round-driven.
"""

from __future__ import annotations

import asyncio
import random

from repro.net.process import Envelope
from repro.net.simulator import RunResult, SyncNetwork

__all__ = ["AsyncNetwork"]


class AsyncNetwork(SyncNetwork):
    """Runs the synchronous model with one asyncio task per party per round.

    Accepts the same arguments as :class:`~repro.net.simulator.SyncNetwork`
    plus ``jitter_seed``: when not ``None``, each party awaits a small
    random delay before acting, shuffling the in-round interleaving.
    """

    def __init__(self, *args, jitter_seed: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._jitter = random.Random(jitter_seed) if jitter_seed is not None else None

    async def _step_party_async(self, party, inboxes) -> None:
        if self._jitter is not None:
            await asyncio.sleep(self._jitter.random() / 10_000.0)
        else:
            await asyncio.sleep(0)
        self._step_party(party, inboxes)

    async def _execute_honest_async(self, inboxes) -> None:
        parties = self._party_order
        await asyncio.gather(
            *(self._step_party_async(party, inboxes) for party in parties)
        )
        # Outboxes are drained in canonical order regardless of which
        # task finished first — this is what keeps the two runtimes
        # bit-for-bit identical.
        for party in parties:
            self._drain_party(party)

    async def run_async(self) -> RunResult:
        """Asyncio analogue of :meth:`SyncNetwork.run`."""
        honest_done = False
        while self._round < self.max_rounds:
            inboxes, late_view = self._begin_round()
            await self._execute_honest_async(inboxes)
            self._rushing_adversary(late_view)
            honest_done = self._advance()
            if honest_done:
                break
        return self._result(honest_done)

    def run(self) -> RunResult:
        """Run the asyncio loop to completion (blocking convenience)."""
        return asyncio.run(self.run_async())
