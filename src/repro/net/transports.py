"""Virtual links: running protocols written for delay-1 networks at any cadence.

The paper repeatedly "assumes" a fully-connected network that is really
simulated over a weaker topology at twice the delay (Lemmas 6, 8, 10 —
``Delta_BA(2*Delta)`` etc.).  We capture that pattern once:

* a :class:`LinkLayer` turns raw per-round traffic into *virtual*
  deliveries among a ``group`` of parties with a uniform virtual delay
  of one virtual round = ``delta`` real rounds;
* a :class:`VirtualContext` presents the virtual network to protocol
  code, so every consensus protocol in :mod:`repro.consensus` is
  written once against delay-1 semantics and runs unchanged over
  relayed links;
* a :class:`TransportProcess` hosts an upper protocol over a link.

:class:`DirectLink` is the trivial delta-1 link; the paper's relay
constructions live in :mod:`repro.core.relays`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from repro.errors import ProtocolError, TopologyError
from repro.ids import PartyId
from repro.net.process import Context, Envelope, Process

__all__ = ["LinkLayer", "DirectLink", "VirtualContext", "TransportProcess"]


class LinkLayer(ABC):
    """A virtual fully-connected network among ``group`` with delay ``delta``.

    Subclasses implement how virtual sends map to raw messages and how
    raw deliveries are turned back into virtual ones.  The contract:

    * a virtual message sent at virtual round ``v`` by an honest party
      is collected by an honest recipient at virtual round ``v + 1``
      (unless the link's documented omission conditions apply);
    * ``ingest`` is called every *real* round and returns the raw
      envelopes that do not belong to the link;
    * ``collect`` is called at virtual round boundaries and drains the
      deliveries that are due.
    """

    #: Real rounds per virtual round.
    delta: int = 1
    #: The parties connected by this virtual network.
    group: tuple[PartyId, ...] = ()

    @abstractmethod
    def virtual_send(self, ctx: Context, dst: PartyId, payload: object) -> None:
        """Emit the raw messages realizing a virtual send to ``dst``."""

    @abstractmethod
    def ingest(self, ctx: Context, inbox: Sequence[Envelope]) -> list[Envelope]:
        """Process one real round of raw deliveries; return non-link envelopes."""

    @abstractmethod
    def collect(self) -> list[Envelope]:
        """Drain virtual deliveries due at the current virtual round."""

    def check_group_member(self, dst: PartyId) -> None:
        """Raise unless ``dst`` belongs to the virtual group."""
        if dst not in self.group:
            raise TopologyError(f"{dst} is not part of this virtual link's group")


class DirectLink(LinkLayer):
    """The identity link: group members already share physical channels."""

    def __init__(self, me: PartyId, group: Iterable[PartyId]) -> None:
        self.delta = 1
        self.me = me
        self.group = tuple(sorted(group))
        self._ready: list[Envelope] = []

    def virtual_send(self, ctx: Context, dst: PartyId, payload: object) -> None:
        self.check_group_member(dst)
        ctx.send(dst, ("lnk.direct", payload))

    def ingest(self, ctx: Context, inbox: Sequence[Envelope]) -> list[Envelope]:
        leftover: list[Envelope] = []
        for envelope in inbox:
            payload = envelope.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "lnk.direct"
                and envelope.src in self.group
            ):
                self._ready.append(
                    Envelope(envelope.src, envelope.dst, envelope.sent_round, payload[1])
                )
            else:
                leftover.append(envelope)
        return leftover

    def collect(self) -> list[Envelope]:
        ready, self._ready = self._ready, []
        return ready


class VirtualContext:
    """The context a protocol sees when running over a :class:`LinkLayer`.

    Rounds are virtual (``real // delta``), neighbors are the link
    group, sends go through the link.  Output/halt pass through to the
    real context by default; hosts that multiplex several protocols
    hand sub-contexts out via :class:`~repro.net.mux.Mux` instead.
    """

    def __init__(self, real: Context, link: LinkLayer) -> None:
        self._real = real
        self._link = link

    @property
    def me(self) -> PartyId:
        return self._real.me

    @property
    def k(self) -> int:
        return self._real.k

    @property
    def round(self) -> int:
        return self._real.round // self._link.delta

    @property
    def neighbors(self) -> tuple[PartyId, ...]:
        return tuple(p for p in self._link.group if p != self._real.me)

    @property
    def authenticated(self) -> bool:
        return self._real.authenticated

    def send(self, dst: PartyId, payload: object) -> None:
        if dst == self._real.me:
            raise ProtocolError(f"{dst} cannot send to itself")
        self._link.virtual_send(self._real, dst, payload)

    def send_many(self, dsts: Iterable[PartyId], payload: object) -> None:
        for dst in dsts:
            self.send(dst, payload)

    def broadcast(self, payload: object) -> None:
        self.send_many(self.neighbors, payload)

    def sign(self, payload: object):
        return self._real.sign(payload)

    def verify(self, signer: PartyId, payload: object, signature: object) -> bool:
        return self._real.verify(signer, payload, signature)

    def output(self, value: object) -> None:
        self._real.output(value)

    @property
    def has_output(self) -> bool:
        return self._real.has_output

    @property
    def current_output(self) -> object:
        return self._real.current_output

    def halt(self) -> None:
        self._real.halt()

    @property
    def halted(self) -> bool:
        return self._real.halted


class TransportProcess(Process):
    """Hosts one upper protocol over a link layer.

    Every real round the link ingests raw traffic; at virtual round
    boundaries the upper protocol takes a step with the virtual inbox.
    Raw envelopes the link does not recognize are handed to
    :meth:`on_unrouted` (no-op by default).
    """

    def __init__(self, link: LinkLayer, upper: Process) -> None:
        self.link = link
        self.upper = upper
        self._vctx: VirtualContext | None = None

    def on_round(self, ctx: Context, inbox: Sequence[Envelope]) -> None:
        leftover = self.link.ingest(ctx, inbox)
        if leftover:
            self.on_unrouted(ctx, leftover)
        if ctx.round % self.link.delta == 0:
            if self._vctx is None:
                self._vctx = VirtualContext(ctx, self.link)
            vinbox = tuple(self.link.collect())
            if not ctx.halted:
                self.upper.on_round(self._vctx, vinbox)

    def on_unrouted(self, ctx: Context, envelopes: list[Envelope]) -> None:
        """Hook for non-link traffic; default drops it."""
