"""Multiplexing many subprotocol instances inside one party.

The paper's protocols run many broadcasts in parallel — e.g. in
``PiBSM`` every party in ``L`` runs one ``PiBB`` invocation per
``L``-party and one ``PiBA`` invocation per ``R``-party, all in
lock-step.  :class:`Mux` hosts any number of named sub-processes inside
a single :class:`~repro.net.process.Process`, tagging outgoing payloads
with the instance name and routing incoming ones accordingly.

Sub-process outputs are collected per name instead of becoming the
party's global output; the hosting process combines them (e.g. feeds
all broadcast results into a local Gale-Shapley run).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ProtocolError
from repro.ids import PartyId
from repro.net.process import Context, Envelope, Process

__all__ = ["Mux", "SubContext"]

_NO_OUTPUT = object()

#: Wire tag marking multiplexed payloads: ("mux", instance_name, inner_payload).
MUX_TAG = "mux"


class SubContext:
    """A context facade handed to a sub-process: tags sends, captures output."""

    def __init__(self, parent: Context, name: object) -> None:
        self._parent = parent
        self._name = name
        self._output: object = _NO_OUTPUT
        self._halted = False

    # Mirror the Context surface sub-protocols rely on.

    @property
    def me(self) -> PartyId:
        return self._parent.me

    @property
    def k(self) -> int:
        return self._parent.k

    @property
    def round(self) -> int:
        return self._parent.round

    @property
    def neighbors(self) -> tuple[PartyId, ...]:
        return self._parent.neighbors

    @property
    def authenticated(self) -> bool:
        return self._parent.authenticated

    def send(self, dst: PartyId, payload: object) -> None:
        self._parent.send(dst, (MUX_TAG, self._name, payload))

    def send_many(self, dsts, payload: object) -> None:
        for dst in dsts:
            self.send(dst, payload)

    def broadcast(self, payload: object) -> None:
        self.send_many(self.neighbors, payload)

    def sign(self, payload: object):
        return self._parent.sign(payload)

    def verify(self, signer: PartyId, payload: object, signature: object) -> bool:
        return self._parent.verify(signer, payload, signature)

    def output(self, value: object) -> None:
        if self._output is not _NO_OUTPUT:
            raise ProtocolError(f"{self.me}/mux[{self._name!r}]: output declared twice")
        self._output = value

    @property
    def has_output(self) -> bool:
        return self._output is not _NO_OUTPUT

    @property
    def current_output(self) -> object:
        if self._output is _NO_OUTPUT:
            raise ProtocolError(f"{self.me}/mux[{self._name!r}]: no output yet")
        return self._output

    def halt(self) -> None:
        self._halted = True

    @property
    def halted(self) -> bool:
        return self._halted


class Mux:
    """Hosts named sub-processes and routes multiplexed messages to them."""

    def __init__(self) -> None:
        self._subs: dict[object, Process] = {}
        self._contexts: dict[object, SubContext] = {}

    def add(self, name: object, process: Process) -> None:
        """Register a sub-process under ``name`` (any hashable wire-encodable id)."""
        if name in self._subs:
            raise ProtocolError(f"mux instance {name!r} registered twice")
        self._subs[name] = process

    def names(self) -> tuple:
        """All registered instance names, in insertion order."""
        return tuple(self._subs)

    def step(self, ctx: Context, inbox: Sequence[Envelope]) -> list[Envelope]:
        """Run one round of every live sub-process.

        Routes multiplexed envelopes to their instances and returns the
        envelopes that were *not* multiplexed (host-level traffic).
        """
        # Routed inboxes materialize lazily: most (instance, round)
        # pairs receive nothing, and the all-empty dict-of-lists per
        # round was a measurable share of sweep time.
        routed: dict[object, list[Envelope]] = {}
        unrouted: list[Envelope] = []
        subs = self._subs
        for envelope in inbox:
            payload = envelope.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == MUX_TAG
                and payload[1] in subs
            ):
                routed.setdefault(payload[1], []).append(
                    Envelope(
                        src=envelope.src,
                        dst=envelope.dst,
                        sent_round=envelope.sent_round,
                        payload=payload[2],
                    )
                )
            else:
                unrouted.append(envelope)

        empty: tuple[Envelope, ...] = ()
        for name, process in subs.items():
            sub_ctx = self._contexts.get(name)
            if sub_ctx is None:
                sub_ctx = SubContext(ctx, name)
                self._contexts[name] = sub_ctx
            if sub_ctx.halted:
                continue
            sub_inbox = routed.get(name)
            process.on_round(sub_ctx, tuple(sub_inbox) if sub_inbox else empty)
        return unrouted

    def output_of(self, name: object) -> object:
        """The output of instance ``name`` (raises if not yet declared)."""
        sub_ctx = self._contexts.get(name)
        if sub_ctx is None or not sub_ctx.has_output:
            raise ProtocolError(f"mux instance {name!r} has no output yet")
        return sub_ctx.current_output

    def has_output(self, name: object) -> bool:
        """True when instance ``name`` declared its output."""
        sub_ctx = self._contexts.get(name)
        return sub_ctx is not None and sub_ctx.has_output

    def all_done(self) -> bool:
        """True when every registered instance has declared an output."""
        return all(self.has_output(name) for name in self._subs)

    def outputs(self) -> dict:
        """Mapping of instance name to output for all finished instances."""
        return {name: self.output_of(name) for name in self._subs if self.has_output(name)}
