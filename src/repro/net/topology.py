"""Network topologies (paper Fig. 1).

Three models, each strictly stronger than the previous:

* :class:`Bipartite` — only ``L x R`` channels (international job
  applicants: you can only talk to potential matches);
* :class:`OneSided` — bipartite plus full connectivity inside ``R``
  (kidney donation: recipients cannot talk to each other);
* :class:`FullyConnected` — everyone talks to everyone.

Topologies are pure edge predicates; the simulator enforces them on
*every* send, including the adversary's — byzantine parties cannot
conjure channels that do not exist.
"""

from __future__ import annotations

import functools
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.ids import PartyId, all_parties

__all__ = [
    "Topology",
    "FullyConnected",
    "OneSided",
    "Bipartite",
    "topology_by_name",
    "TOPOLOGY_NAMES",
]


@dataclass(frozen=True)
class Topology(ABC):
    """An undirected communication graph over the ``2k`` parties."""

    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise TopologyError(f"k must be positive, got {self.k}")

    @property
    @abstractmethod
    def name(self) -> str:
        """Stable lowercase identifier (``"fully_connected"`` etc.)."""

    @abstractmethod
    def allows(self, src: PartyId, dst: PartyId) -> bool:
        """True when a channel exists between ``src`` and ``dst``."""

    def parties(self) -> tuple[PartyId, ...]:
        """All ``2k`` parties in canonical order."""
        return all_parties(self.k)

    def neighbors(self, party: PartyId) -> tuple[PartyId, ...]:
        """All parties ``party`` shares a channel with, in canonical order."""
        self._check_member(party)
        return _adjacency(self)[party]

    def neighbor_set(self, party: PartyId) -> frozenset[PartyId]:
        """The :meth:`neighbors` of ``party`` as a set (O(1) edge checks).

        Membership here is equivalent to a passing :meth:`check_edge` —
        the kernel's per-send fast path for both honest contexts and the
        adversary's world.
        """
        self._check_member(party)
        return _neighbor_sets(self)[party]

    def check_edge(self, src: PartyId, dst: PartyId) -> None:
        """Raise :class:`TopologyError` unless ``src``-``dst`` is a channel."""
        self._check_member(src)
        self._check_member(dst)
        if src == dst:
            raise TopologyError(f"{src} cannot send to itself")
        if not self.allows(src, dst):
            raise TopologyError(f"no channel {src} -> {dst} in {self.name} (k={self.k})")

    def edge_count(self) -> int:
        """Number of undirected channels."""
        parties = self.parties()
        return sum(
            1
            for i, u in enumerate(parties)
            for v in parties[i + 1 :]
            if self.allows(u, v)
        )

    def _check_member(self, party: PartyId) -> None:
        if party.index >= self.k:
            raise TopologyError(f"{party} is not a party of a k={self.k} network")


@dataclass(frozen=True)
class FullyConnected(Topology):
    """Every pair of distinct parties shares a channel."""

    @property
    def name(self) -> str:
        return "fully_connected"

    def allows(self, src: PartyId, dst: PartyId) -> bool:
        return src != dst


@dataclass(frozen=True)
class OneSided(Topology):
    """All channels except inside ``L``: parties in ``L`` cannot talk directly."""

    @property
    def name(self) -> str:
        return "one_sided"

    def allows(self, src: PartyId, dst: PartyId) -> bool:
        if src == dst:
            return False
        return not (src.is_left() and dst.is_left())


@dataclass(frozen=True)
class Bipartite(Topology):
    """Only cross-side channels exist."""

    @property
    def name(self) -> str:
        return "bipartite"

    def allows(self, src: PartyId, dst: PartyId) -> bool:
        return src.side != dst.side


# Topologies are frozen dataclasses (equal by class + k), so the
# adjacency of every instance of a given shape computes once per
# process, not once per run — engine construction does 2k neighbor
# lookups per run, and sweeps build thousands of engines over the same
# handful of shapes.
@functools.lru_cache(maxsize=None)
def _adjacency(topology: Topology) -> dict[PartyId, tuple[PartyId, ...]]:
    parties = topology.parties()
    return {
        party: tuple(
            other for other in parties if other != party and topology.allows(party, other)
        )
        for party in parties
    }


@functools.lru_cache(maxsize=None)
def _neighbor_sets(topology: Topology) -> dict[PartyId, frozenset[PartyId]]:
    return {
        party: frozenset(neighbors)
        for party, neighbors in _adjacency(topology).items()
    }


TOPOLOGY_NAMES = ("fully_connected", "one_sided", "bipartite")


def topology_by_name(name: str, k: int) -> Topology:
    """Instantiate a topology from its stable name."""
    table = {
        "fully_connected": FullyConnected,
        "one_sided": OneSided,
        "bipartite": Bipartite,
    }
    try:
        cls = table[name]
    except KeyError as exc:
        raise TopologyError(f"unknown topology {name!r}; expected one of {TOPOLOGY_NAMES}") from exc
    return cls(k=k)
