"""Party identifiers and side helpers.

The paper works with ``n = 2k`` parties split into two disjoint sides
``L`` and ``R`` of size ``k`` each.  Everything in this library addresses
parties through :class:`PartyId`, a small immutable value object that
encodes the side and an index within the side.

``PartyId`` is hashable and totally ordered (side first, ``L`` before
``R``, then index), which gives every module a canonical, deterministic
iteration order — determinism of the whole simulator rests on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache, total_ordering
from typing import Iterable, Iterator

__all__ = [
    "LEFT",
    "RIGHT",
    "PartyId",
    "left_party",
    "right_party",
    "left_side",
    "right_side",
    "all_parties",
    "opposite",
    "parse_party",
]

#: Side label for the left set (men / students / producers in the paper).
LEFT = "L"
#: Side label for the right set (women / universities / consumers).
RIGHT = "R"

_VALID_SIDES = (LEFT, RIGHT)


@total_ordering
@dataclass(frozen=True)
class PartyId:
    """Identity of one party: a side (``"L"`` or ``"R"``) and an index.

    Instances print as ``L0``, ``R3``, ... and sort deterministically:
    all of ``L`` before all of ``R``, each side by index.
    """

    side: str
    index: int

    def __post_init__(self) -> None:
        if self.side not in _VALID_SIDES:
            raise ValueError(f"side must be 'L' or 'R', got {self.side!r}")
        if not isinstance(self.index, int) or isinstance(self.index, bool):
            raise TypeError(f"index must be an int, got {type(self.index).__name__}")
        if self.index < 0:
            raise ValueError(f"index must be non-negative, got {self.index}")
        # Party ids are the keys of nearly every dict in the simulator and
        # the leaves of most signed payloads, so their hash is on every hot
        # path.  Precompute it (and the sort key) once; both are derived
        # from frozen fields, so the cache can never go stale.
        object.__setattr__(self, "_hash", hash((self.side, self.index)))
        object.__setattr__(self, "_key", (self.side, self.index))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other.__class__ is PartyId:
            return self._key == other._key
        return NotImplemented

    @property
    def opposite_side(self) -> str:
        """The label of the other side."""
        return RIGHT if self.side == LEFT else LEFT

    def is_left(self) -> bool:
        """True when this party belongs to side ``L``."""
        return self.side == LEFT

    def is_right(self) -> bool:
        """True when this party belongs to side ``R``."""
        return self.side == RIGHT

    def __str__(self) -> str:
        return f"{self.side}{self.index}"

    def __repr__(self) -> str:
        return f"PartyId({self.side!r}, {self.index})"

    def __lt__(self, other: "PartyId") -> bool:
        if not isinstance(other, PartyId):
            return NotImplemented
        return self._key < other._key


# The canonical constructors intern their results: the simulator churns
# through the same handful of identities millions of times, and interned
# instances let dict lookups and tuple comparisons take CPython's
# identity shortcut instead of calling __eq__.  PartyId stays an
# ordinary value type — direct construction is still valid, merely
# uninterned.


@lru_cache(maxsize=None)
def left_party(index: int) -> PartyId:
    """Shorthand for ``PartyId("L", index)`` (interned)."""
    return PartyId(LEFT, index)


@lru_cache(maxsize=None)
def right_party(index: int) -> PartyId:
    """Shorthand for ``PartyId("R", index)`` (interned)."""
    return PartyId(RIGHT, index)


@lru_cache(maxsize=None)
def left_side(k: int) -> tuple[PartyId, ...]:
    """The canonical left side ``(L0, ..., L{k-1})``."""
    return tuple(left_party(i) for i in range(k))


@lru_cache(maxsize=None)
def right_side(k: int) -> tuple[PartyId, ...]:
    """The canonical right side ``(R0, ..., R{k-1})``."""
    return tuple(right_party(i) for i in range(k))


@lru_cache(maxsize=None)
def all_parties(k: int) -> tuple[PartyId, ...]:
    """All ``2k`` parties in canonical order: ``L0..L{k-1}, R0..R{k-1}``."""
    return left_side(k) + right_side(k)


def opposite(parties: Iterable[PartyId], k: int) -> tuple[PartyId, ...]:
    """The full side opposite to the (single-side) collection ``parties``.

    Raises ``ValueError`` when ``parties`` is empty or mixes sides.
    """
    sides = {p.side for p in parties}
    if len(sides) != 1:
        raise ValueError(f"expected parties from exactly one side, got sides {sorted(sides)}")
    (side,) = sides
    return right_side(k) if side == LEFT else left_side(k)


def parse_party(text: str) -> PartyId:
    """Parse ``"L3"`` / ``"R0"`` back into a :class:`PartyId`."""
    if len(text) < 2 or text[0] not in _VALID_SIDES:
        raise ValueError(f"cannot parse party id from {text!r}")
    try:
        index = int(text[1:])
    except ValueError as exc:
        raise ValueError(f"cannot parse party id from {text!r}") from exc
    if index < 0:
        raise ValueError(f"cannot parse party id from {text!r}")
    return left_party(index) if text[0] == LEFT else right_party(index)


def sides_of(parties: Iterable[PartyId]) -> Iterator[str]:
    """Yield the distinct sides present in ``parties`` (deterministic order)."""
    seen: set[str] = set()
    for party in sorted(parties):
        if party.side not in seen:
            seen.add(party.side)
            yield party.side
